package repl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
)

func TestHubPublishWaitEvict(t *testing.T) {
	h := NewHub(4, 10)
	if h.Head() != 10 || h.Oldest() != 11 {
		t.Fatalf("fresh hub: head=%d oldest=%d", h.Head(), h.Oldest())
	}

	// Waiter blocks until publish.
	got := make(chan Entry, 1)
	go func() {
		e, res := h.WaitNext(10, 0, nil)
		if res != WaitReady {
			t.Errorf("WaitNext: %v", res)
		}
		got <- e
	}()
	h.Publish(11, []byte("d11"), 111)
	e := <-got
	if e.Epoch != 11 || string(e.Payload) != "d11" || e.PublishedNanos != 111 {
		t.Fatalf("entry: %+v", e)
	}

	// Stale and gapped publishes.
	h.Publish(11, []byte("dup"), 0) // ignored
	for ep := uint64(12); ep <= 17; ep++ {
		h.Publish(ep, []byte(fmt.Sprintf("d%d", ep)), 0)
	}
	// cap=4: ring covers 14..17 now.
	if h.Head() != 17 || h.Oldest() != 14 {
		t.Fatalf("after eviction: head=%d oldest=%d", h.Head(), h.Oldest())
	}
	if _, res := h.WaitNext(11, 0, nil); res != WaitEvicted {
		t.Fatalf("evicted epoch: %v", res)
	}
	if e, res := h.WaitNext(14, 0, nil); res != WaitReady || e.Epoch != 15 {
		t.Fatalf("mid-ring: %v %+v", res, e)
	}

	// Timeout and cancel.
	if _, res := h.WaitNext(17, 10*time.Millisecond, nil); res != WaitTimeout {
		t.Fatalf("timeout: %v", res)
	}
	cancel := make(chan struct{})
	close(cancel)
	if _, res := h.WaitNext(17, 0, cancel); res != WaitCanceled {
		t.Fatalf("cancel: %v", res)
	}

	// Non-contiguous publish rebases the ring (promotion / snapshot reset).
	h.Publish(40, []byte("d40"), 0)
	if h.Head() != 40 || h.Oldest() != 40 {
		t.Fatalf("after rebase: head=%d oldest=%d", h.Head(), h.Oldest())
	}

	h.Close()
	if _, res := h.WaitNext(40, 0, nil); res != WaitClosed {
		t.Fatalf("closed: %v", res)
	}
	h.Publish(41, nil, 0) // dropped, no panic
	if h.Head() != 40 {
		t.Fatalf("publish after close advanced head to %d", h.Head())
	}
}

func TestHubConcurrentTailers(t *testing.T) {
	h := NewHub(64, 0)
	const n, tailers = 50, 8
	var wg sync.WaitGroup
	for i := 0; i < tailers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			after := uint64(0)
			for after < n {
				e, res := h.WaitNext(after, 0, nil)
				if res != WaitReady || e.Epoch != after+1 {
					t.Errorf("tailer: res=%v epoch=%d after=%d", res, e.Epoch, after)
					return
				}
				after = e.Epoch
			}
		}()
	}
	for ep := uint64(1); ep <= n; ep++ {
		h.Publish(ep, []byte{byte(ep)}, 0)
	}
	wg.Wait()
}

// streamServer wires ServeStream to a test mux the way the real server
// does, with a canned snapshot.
func streamServer(h *Hub, snapEpoch *uint64, snapData *[]byte) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		from := uint64(0)
		fmt.Sscanf(r.URL.Query().Get("from"), "%d", &from)
		ServeStream(w, r, ServeOptions{
			From:      from,
			Hub:       h,
			Heartbeat: 20 * time.Millisecond,
			Snapshot: func() (uint64, []byte, error) {
				return *snapEpoch, *snapData, nil
			},
		})
	}))
}

func TestStreamTailAndLiveCommits(t *testing.T) {
	h := NewHub(128, 0)
	snapEpoch, snapData := uint64(0), []byte(nil)
	srv := streamServer(h, &snapEpoch, &snapData)
	defer srv.Close()

	for ep := uint64(1); ep <= 3; ep++ {
		h.Publish(ep, []byte(fmt.Sprintf("delta-%d", ep)), int64(ep*100))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := Open(ctx, srv.Client(), srv.URL, "default", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.LeaderEpoch() != 3 {
		t.Fatalf("leader epoch header: %d", s.LeaderEpoch())
	}

	// Publish two more live while tailing.
	go func() {
		time.Sleep(10 * time.Millisecond)
		h.Publish(4, []byte("delta-4"), 400)
		h.Publish(5, []byte("delta-5"), 500)
	}()

	want := uint64(2)
	deadline := time.After(5 * time.Second)
	for want <= 5 {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for epoch %d", want)
		default:
		}
		ev, err := s.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if ev.Kind == KindMeta {
			continue
		}
		if ev.Kind != KindDelta || ev.Epoch != want {
			t.Fatalf("event: kind=%d epoch=%d want delta %d", ev.Kind, ev.Epoch, want)
		}
		if string(ev.Payload) != fmt.Sprintf("delta-%d", want) {
			t.Fatalf("payload: %q", ev.Payload)
		}
		if ev.PublishedNanos != int64(want*100) {
			t.Fatalf("published nanos: %d for epoch %d", ev.PublishedNanos, want)
		}
		if ev.LeaderEpoch < want {
			t.Fatalf("leader epoch %d below delta epoch %d", ev.LeaderEpoch, want)
		}
		want++
	}
}

func TestStreamCheckpointSeed(t *testing.T) {
	h := NewHub(2, 0)
	for ep := uint64(1); ep <= 10; ep++ {
		h.Publish(ep, []byte(fmt.Sprintf("delta-%d", ep)), 0)
	}
	// Ring covers 9..10 only; from=0 must seed via checkpoint.
	snapEpoch, snapData := uint64(10), []byte("full-checkpoint")
	srv := streamServer(h, &snapEpoch, &snapData)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := Open(ctx, srv.Client(), srv.URL, "default", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var first Event
	for {
		ev, err := s.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if ev.Kind != KindMeta {
			first = ev
			break
		}
	}
	if first.Kind != KindSnapshot || first.Epoch != 10 || string(first.Payload) != "full-checkpoint" {
		t.Fatalf("first event: kind=%d epoch=%d payload=%q", first.Kind, first.Epoch, first.Payload)
	}

	// After the snapshot the stream tails live.
	h.Publish(11, []byte("delta-11"), 0)
	for {
		ev, err := s.Next()
		if err != nil {
			t.Fatalf("Next after snapshot: %v", err)
		}
		if ev.Kind == KindMeta {
			continue
		}
		if ev.Kind != KindDelta || ev.Epoch != 11 {
			t.Fatalf("post-snapshot event: kind=%d epoch=%d", ev.Kind, ev.Epoch)
		}
		break
	}
}

func TestStreamResumeNoCheckpointWhenRingCovers(t *testing.T) {
	h := NewHub(128, 0)
	for ep := uint64(1); ep <= 5; ep++ {
		h.Publish(ep, []byte{byte(ep)}, 0)
	}
	snapEpoch, snapData := uint64(5), []byte("should-not-be-sent")
	srv := streamServer(h, &snapEpoch, &snapData)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := Open(ctx, srv.Client(), srv.URL, "default", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for want := uint64(4); want <= 5; {
		ev, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == KindMeta {
			continue
		}
		if ev.Kind != KindDelta || ev.Epoch != want {
			t.Fatalf("resume event: kind=%d epoch=%d want %d", ev.Kind, ev.Epoch, want)
		}
		want++
	}
}

func TestStreamFollowerAhead(t *testing.T) {
	h := NewHub(16, 3)
	snapEpoch, snapData := uint64(3), []byte(nil)
	srv := streamServer(h, &snapEpoch, &snapData)
	defer srv.Close()

	_, err := Open(context.Background(), srv.Client(), srv.URL, "default", 7)
	if !errors.Is(err, ErrFollowerAhead) {
		t.Fatalf("got %v, want ErrFollowerAhead", err)
	}
}

func TestStreamHeartbeatCarriesLeaderEpoch(t *testing.T) {
	h := NewHub(16, 2)
	snapEpoch, snapData := uint64(2), []byte("snap")
	srv := streamServer(h, &snapEpoch, &snapData)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := Open(ctx, srv.Client(), srv.URL, "default", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ev, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != KindMeta || ev.LeaderEpoch != 2 || ev.PublishedNanos == 0 {
		t.Fatalf("opening meta: %+v", ev)
	}
	// Idle: next frame is a heartbeat, not a delta.
	ev, err = s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != KindMeta || ev.LeaderEpoch != 2 {
		t.Fatalf("heartbeat: %+v", ev)
	}
}

// TestStreamCutMidFrame pins the contract the follower applier relies on:
// a connection cut at an arbitrary byte offset surfaces as ErrTornFrame
// (or clean EOF between frames), never as a half-decoded record.
func TestStreamCutMidFrame(t *testing.T) {
	var full bytes.Buffer
	if err := wal.WriteFrame(&full, MetaEpoch, encodeMeta(Meta{LeaderEpoch: 2, PublishedNanos: 1})); err != nil {
		t.Fatal(err)
	}
	if err := wal.WriteFrame(&full, 1, []byte("delta-one")); err != nil {
		t.Fatal(err)
	}
	if err := wal.WriteFrame(&full, 2, []byte("delta-two")); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	for cut := 0; cut <= len(raw); cut++ {
		fr := wal.NewFrameReader(bytes.NewReader(raw[:cut]))
		decoded := 0
		for {
			_, _, err := fr.Next()
			if err == nil {
				decoded++
				continue
			}
			if err != io.EOF && !errors.Is(err, wal.ErrTornFrame) {
				t.Fatalf("cut at %d: unexpected error %v", cut, err)
			}
			break
		}
		if decoded > 3 {
			t.Fatalf("cut at %d: decoded %d frames from a 3-frame stream", cut, decoded)
		}
	}
}

func TestMetaRoundTrip(t *testing.T) {
	m := Meta{LeaderEpoch: 123456789, PublishedNanos: -42}
	got, err := decodeMeta(encodeMeta(m))
	if err != nil || got != m {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
	if _, err := decodeMeta([]byte("short")); err == nil {
		t.Fatal("short meta decoded")
	}
}
