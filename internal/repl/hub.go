package repl

import (
	"sync"
	"time"
)

// Entry is one published record held by a Hub: the delta payload for an
// epoch plus its publish wall-clock.
type Entry struct {
	Epoch          uint64
	Payload        []byte
	PublishedNanos int64
}

// WaitResult classifies the outcome of Hub.WaitNext.
type WaitResult int

const (
	// WaitReady: the entry is available.
	WaitReady WaitResult = iota
	// WaitEvicted: the requested epoch has been evicted from the ring; the
	// caller must restart from a checkpoint.
	WaitEvicted
	// WaitCanceled: the caller's cancel channel fired first.
	WaitCanceled
	// WaitTimeout: the timeout elapsed with nothing new published.
	WaitTimeout
	// WaitClosed: the hub was closed (store shutting down).
	WaitClosed
)

// Hub is the leader-side tail buffer: a bounded ring of the most recently
// published (epoch, delta) pairs. The store's publish path feeds it —
// publishes are single-threaded per store, so entries arrive in epoch
// order — and any number of stream goroutines block on WaitNext to tail
// it. Readers that fall behind the ring's capacity are told to re-seed
// from a checkpoint rather than stalling the writer.
type Hub struct {
	mu      sync.Mutex
	notify  chan struct{} // closed and replaced on every publish/close
	closed  bool
	cap     int
	base    uint64 // ring covers epochs base+1 .. head
	head    uint64
	entries []Entry
}

// DefaultHubCapacity bounds how many recent deltas a store retains for
// tailing followers before they are pushed back to a checkpoint.
const DefaultHubCapacity = 1024

// NewHub returns a hub based at epoch at (the store's current epoch: the
// first published entry is expected to be at+1). capacity <= 0 selects
// DefaultHubCapacity.
func NewHub(capacity int, at uint64) *Hub {
	if capacity <= 0 {
		capacity = DefaultHubCapacity
	}
	return &Hub{
		notify: make(chan struct{}),
		cap:    capacity,
		base:   at,
		head:   at,
	}
}

// Publish appends the delta for epoch. Contiguous epochs (head+1) extend
// the ring; anything else resets it — a follower-turned-leader or a
// snapshot-reset store re-bases the hub at its new epoch line. Stale
// epochs (<= head) are ignored. The payload is retained by reference and
// must not be mutated by the caller afterwards.
func (h *Hub) Publish(epoch uint64, payload []byte, publishedNanos int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || epoch <= h.head {
		return
	}
	if epoch != h.head+1 {
		h.entries = h.entries[:0]
		h.base = epoch - 1
	}
	h.entries = append(h.entries, Entry{Epoch: epoch, Payload: payload, PublishedNanos: publishedNanos})
	h.head = epoch
	if len(h.entries) > h.cap {
		drop := len(h.entries) - h.cap
		h.entries = append(h.entries[:0], h.entries[drop:]...)
		h.base += uint64(drop)
	}
	close(h.notify)
	h.notify = make(chan struct{})
}

// Rebase moves the hub to a new epoch line with no deltas: the ring
// empties and base = head = epoch. A follower store that re-seeded from a
// full checkpoint calls this — the epochs between its old and new state
// were never applied as deltas, so tailing streams must end (their clients
// re-seed from a checkpoint of their own).
func (h *Hub) Rebase(epoch uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.entries = h.entries[:0]
	h.base = epoch
	h.head = epoch
	close(h.notify)
	h.notify = make(chan struct{})
}

// Head returns the newest published epoch.
func (h *Hub) Head() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.head
}

// Oldest returns the oldest epoch still in the ring (base+1), or head+1
// when the ring is empty.
func (h *Hub) Oldest() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.base + 1
}

// Close wakes all waiters with WaitClosed; further publishes are dropped.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	close(h.notify)
	h.notify = make(chan struct{})
}

// WaitNext returns the entry for epoch after+1, blocking until it is
// published, the timeout elapses (timeout <= 0 waits forever), cancel
// fires, or the hub closes. WaitEvicted means after+1 has already left
// the ring and the caller must restart from a checkpoint.
func (h *Hub) WaitNext(after uint64, timeout time.Duration, cancel <-chan struct{}) (Entry, WaitResult) {
	var timer *time.Timer
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		timeoutCh = timer.C
		defer timer.Stop()
	}
	for {
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			return Entry{}, WaitClosed
		}
		if after < h.base {
			h.mu.Unlock()
			return Entry{}, WaitEvicted
		}
		if after < h.head {
			e := h.entries[after-h.base]
			h.mu.Unlock()
			return e, WaitReady
		}
		notify := h.notify
		h.mu.Unlock()
		select {
		case <-notify:
		case <-timeoutCh:
			return Entry{}, WaitTimeout
		case <-cancel:
			return Entry{}, WaitCanceled
		}
	}
}
