// Package repl ships the write-ahead log: the WAL is already a totally
// ordered, CRC-framed stream of self-describing epoch deltas, so
// replication is "serve those frames over HTTP and apply them on the other
// side through the existing recovery path".
//
// The leader side is a Hub — a bounded in-memory ring of the most recently
// published (epoch, delta) pairs, fed by the store's publish path (group
// committer or inline) — plus ServeStream, which answers
//
//	GET /stores/{name}/wal?from=<epoch>
//
// with a chunked, indefinitely tailing stream of records framed exactly as
// on-disk WAL records (wal.WriteFrame): if the ring still covers
// from+1...head the stream is pure deltas; otherwise it opens with a full
// checkpoint frame (the current epoch snapshot, graph.Save bytes) announced
// by the X-Repl-Snapshot header, then tails deltas from there. Interleaved
// meta frames (a reserved epoch number) carry the leader's head epoch and
// the publish wall-clock of the record that follows, which is what the
// follower's lag metrics feed on; when no commits arrive, periodic meta
// heartbeats keep the follower's view of the leader epoch fresh.
//
// The follower side is Stream (client.go): it decodes the frame stream into
// snapshot / delta / meta events that the serving layer's applier feeds
// through graph.ApplyDelta + prov.Recorder.IndexFrom — the same code path
// crash recovery replays a local log through — and publishes via the same
// atomic-pointer epoch swap, so a follower serves the full lock-free read
// API at its applied epoch.
//
// Resumability is the WAL's own contract: any byte cut leaves the follower
// with an exact epoch prefix (a torn frame is detected exactly as a torn
// log tail would be, and an epoch gap is refused by the applier), and a
// reconnect with from=<applied> continues where it stopped, falling back to
// a checkpoint only when the ring has moved on.
package repl

import (
	"encoding/binary"
	"fmt"
	"math"
)

// MetaEpoch is the reserved epoch number carried by meta frames. Real
// epochs count committed batches from zero and can never reach it.
const MetaEpoch = math.MaxUint64

// Protocol headers.
const (
	// HeaderSnapshot, on a stream response, announces that the first
	// non-meta frame is a full checkpoint at the given epoch rather than a
	// delta.
	HeaderSnapshot = "X-Repl-Snapshot"
	// HeaderLeaderEpoch, on a stream response, is the leader's head epoch
	// at stream start.
	HeaderLeaderEpoch = "X-Repl-Leader-Epoch"
	// HeaderMinEpoch, on a read request, is the read-your-writes token: the
	// minimum epoch the serving snapshot must have reached (followers wait
	// for their applier, up to a deadline, then 412).
	HeaderMinEpoch = "X-Min-Epoch"
	// HeaderMinEpochWait, on a read request, bounds the HeaderMinEpoch wait
	// in milliseconds (capped server-side).
	HeaderMinEpochWait = "X-Min-Epoch-Wait-Ms"
	// HeaderLeader, on follower responses that punt to the leader (write
	// redirects, read-your-writes timeouts), names the leader's base URL.
	HeaderLeader = "X-Repl-Leader"
)

// metaLen is the meta-frame payload length: u64le leader head epoch, i64le
// publish wall-clock (unix nanos; 0 when unknown).
const metaLen = 16

// Meta is the decoded payload of a meta frame.
type Meta struct {
	// LeaderEpoch is the leader's newest published epoch.
	LeaderEpoch uint64
	// PublishedNanos is the publish wall-clock (unix nanos) of the delta
	// frame that follows, or of the head epoch on heartbeats; 0 if unknown.
	PublishedNanos int64
}

// encodeMeta renders a meta payload.
func encodeMeta(m Meta) []byte {
	var b [metaLen]byte
	binary.LittleEndian.PutUint64(b[0:8], m.LeaderEpoch)
	binary.LittleEndian.PutUint64(b[8:16], uint64(m.PublishedNanos))
	return b[:]
}

// decodeMeta parses a meta payload.
func decodeMeta(p []byte) (Meta, error) {
	if len(p) != metaLen {
		return Meta{}, fmt.Errorf("repl: meta frame of %d bytes (want %d)", len(p), metaLen)
	}
	return Meta{
		LeaderEpoch:    binary.LittleEndian.Uint64(p[0:8]),
		PublishedNanos: int64(binary.LittleEndian.Uint64(p[8:16])),
	}, nil
}
