package repl

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/wal"
)

// ServeOptions configures one ServeStream call.
type ServeOptions struct {
	// From is the follower's applied epoch: the stream starts at From+1.
	From uint64
	// Hub is the store's publish tail.
	Hub *Hub
	// Snapshot materializes the current epoch as a checkpoint frame:
	// (epoch, graph.Save bytes). Called only when the hub no longer covers
	// From+1.
	Snapshot func() (uint64, []byte, error)
	// Heartbeat is the idle meta-frame interval; <= 0 selects one second.
	Heartbeat time.Duration
	// ForceSnapshot opens the stream with a checkpoint frame even when the
	// hub ring still covers From+1. Stores whose epoch-0 graph was not
	// empty (loaded or generated at boot) set this for from=0 followers:
	// no delta in the ring reproduces that base state.
	ForceSnapshot bool
}

// DefaultHeartbeat is the idle meta-frame interval when ServeOptions
// leaves Heartbeat unset.
const DefaultHeartbeat = time.Second

// ServeStream answers GET /stores/{name}/wal?from=<epoch>: an indefinitely
// tailing chunked stream of WAL-framed records, optionally opening with a
// checkpoint frame when the hub ring has moved past from+1. It returns
// only when the client goes away, the hub closes, the follower falls off
// the ring mid-stream (it will reconnect and re-seed), or a write fails.
// Errors before any byte is streamed surface as HTTP statuses; after
// that, as a cut stream — which is exactly the case the follower's torn-
// frame handling exists for.
func ServeStream(w http.ResponseWriter, r *http.Request, opts ServeOptions) {
	hub := opts.Hub
	heartbeat := opts.Heartbeat
	if heartbeat <= 0 {
		heartbeat = DefaultHeartbeat
	}

	from := opts.From
	head := hub.Head()
	if from > head {
		// The follower claims an epoch this store has never published —
		// it replicated from someone else (or from this store's previous
		// life). It must re-seed, not wait for history to catch up.
		http.Error(w, fmt.Sprintf("follower epoch %d ahead of leader epoch %d", from, head), http.StatusConflict)
		return
	}

	var snapEpoch uint64
	var snapData []byte
	if opts.ForceSnapshot || from+1 < hub.Oldest() {
		ep, data, err := opts.Snapshot()
		if err != nil {
			http.Error(w, "snapshot: "+err.Error(), http.StatusInternalServerError)
			return
		}
		if ep < from {
			http.Error(w, fmt.Sprintf("snapshot epoch %d behind follower epoch %d", ep, from), http.StatusConflict)
			return
		}
		snapEpoch, snapData = ep, data
		w.Header().Set(HeaderSnapshot, strconv.FormatUint(ep, 10))
		from = ep
	}

	w.Header().Set(HeaderLeaderEpoch, strconv.FormatUint(head, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	writeMeta := func(m Meta) bool {
		return wal.WriteFrame(w, MetaEpoch, encodeMeta(m)) == nil
	}

	if !writeMeta(Meta{LeaderEpoch: hub.Head(), PublishedNanos: time.Now().UnixNano()}) {
		return
	}
	if snapData != nil {
		if wal.WriteFrame(w, snapEpoch, snapData) != nil {
			return
		}
	}
	flush()

	cancel := r.Context().Done()
	for {
		e, res := hub.WaitNext(from, heartbeat, cancel)
		switch res {
		case WaitReady:
			// Meta first: the follower reads the leader head and the
			// record's publish time before applying, so lag metrics are
			// per-record accurate.
			if !writeMeta(Meta{LeaderEpoch: hub.Head(), PublishedNanos: e.PublishedNanos}) {
				return
			}
			if wal.WriteFrame(w, e.Epoch, e.Payload) != nil {
				return
			}
			from = e.Epoch
			// Flush only when caught up: mid-burst frames ride the next
			// chunk together.
			if from == hub.Head() {
				flush()
			}
		case WaitTimeout:
			if !writeMeta(Meta{LeaderEpoch: hub.Head(), PublishedNanos: time.Now().UnixNano()}) {
				return
			}
			flush()
		case WaitEvicted, WaitCanceled, WaitClosed:
			return
		}
	}
}
