package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/wal"
)

// EventKind classifies one decoded stream event.
type EventKind int

const (
	// KindSnapshot: Payload is a full checkpoint (graph.Save bytes) at
	// Epoch; the follower must reset to it.
	KindSnapshot EventKind = iota
	// KindDelta: Payload is the epoch delta for Epoch; apply on top of
	// Epoch-1.
	KindDelta
	// KindMeta: a leader heartbeat; Epoch and Payload are unset.
	KindMeta
)

// Event is one decoded record from a replication stream. LeaderEpoch and
// PublishedNanos ride along on every kind, taken from the most recent
// meta frame.
type Event struct {
	Kind           EventKind
	Epoch          uint64
	Payload        []byte
	LeaderEpoch    uint64
	PublishedNanos int64
}

// ErrFollowerAhead reports a leader that refused the stream because the
// follower's epoch is beyond the leader's history (HTTP 409) — the
// follower replicated from a different lineage and must re-seed from
// epoch 0 or be promoted.
var ErrFollowerAhead = errors.New("repl: follower epoch ahead of leader")

// StreamURL renders the wal-stream URL for a store on a leader.
func StreamURL(leaderURL, store string, from uint64) string {
	return strings.TrimSuffix(leaderURL, "/") + "/stores/" + url.PathEscape(store) +
		"/wal?from=" + strconv.FormatUint(from, 10)
}

// Stream is an open replication stream: a decoded view of one wal-stream
// response. It is not safe for concurrent use.
type Stream struct {
	resp *http.Response
	fr   *wal.FrameReader

	// snapEpoch is the announced checkpoint epoch; snapPending marks that
	// the next non-meta frame is that checkpoint.
	snapEpoch   uint64
	snapPending bool

	leaderEpoch uint64
	lastNanos   int64
}

// Open connects to leaderURL's wal stream for store, resuming after epoch
// from. hc nil selects http.DefaultClient. The returned stream must be
// Closed. Cancel ctx to abort the tail.
func Open(ctx context.Context, hc *http.Client, leaderURL, store string, from uint64) (*Stream, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, StreamURL(leaderURL, store, from), nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		if resp.StatusCode == http.StatusConflict {
			return nil, fmt.Errorf("%w: %s", ErrFollowerAhead, strings.TrimSpace(string(body)))
		}
		return nil, fmt.Errorf("repl: leader returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	s := &Stream{resp: resp, fr: wal.NewFrameReader(resp.Body)}
	if v := resp.Header.Get(HeaderLeaderEpoch); v != "" {
		s.leaderEpoch, _ = strconv.ParseUint(v, 10, 64)
	}
	if v := resp.Header.Get(HeaderSnapshot); v != "" {
		ep, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			resp.Body.Close()
			return nil, fmt.Errorf("repl: bad %s header %q", HeaderSnapshot, v)
		}
		s.snapEpoch, s.snapPending = ep, true
	}
	return s, nil
}

// Next returns the next event. io.EOF means the leader closed the stream
// cleanly between frames; wal.ErrTornFrame means the connection cut
// mid-frame (everything already returned is intact); wal.ErrBadFrame
// means corruption. The event payload is only valid until the next call.
func (s *Stream) Next() (Event, error) {
	epoch, payload, err := s.fr.Next()
	if err != nil {
		return Event{}, err
	}
	if epoch == MetaEpoch {
		m, err := decodeMeta(payload)
		if err != nil {
			return Event{}, fmt.Errorf("%w: %v", wal.ErrBadFrame, err)
		}
		s.leaderEpoch = m.LeaderEpoch
		s.lastNanos = m.PublishedNanos
		return Event{Kind: KindMeta, LeaderEpoch: m.LeaderEpoch, PublishedNanos: m.PublishedNanos}, nil
	}
	ev := Event{Kind: KindDelta, Epoch: epoch, Payload: payload, LeaderEpoch: s.leaderEpoch, PublishedNanos: s.lastNanos}
	if s.snapPending {
		s.snapPending = false
		if epoch != s.snapEpoch {
			return Event{}, fmt.Errorf("%w: checkpoint frame at epoch %d, header said %d", wal.ErrBadFrame, epoch, s.snapEpoch)
		}
		ev.Kind = KindSnapshot
	}
	return ev, nil
}

// LeaderEpoch returns the leader's head epoch as of the most recent meta
// frame (or the stream-start header before any meta arrives).
func (s *Stream) LeaderEpoch() uint64 { return s.leaderEpoch }

// Close releases the underlying connection.
func (s *Stream) Close() error { return s.resp.Body.Close() }
