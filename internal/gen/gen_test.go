package gen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/prov"
)

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, lambda := range []float64{0.5, 2, 5} {
		sum := 0
		n := 20000
		for i := 0; i < n; i++ {
			sum += Poisson(rng, lambda)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda) > 0.15*lambda+0.05 {
			t.Errorf("Poisson(%g) mean %g", lambda, mean)
		}
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -1) != 0 {
		t.Error("non-positive lambda must give 0")
	}
}

func TestGammaMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, shape := range []float64{0.1, 0.5, 1, 3} {
		sum := 0.0
		n := 20000
		for i := 0; i < n; i++ {
			sum += Gamma(rng, shape)
		}
		mean := sum / float64(n)
		if math.Abs(mean-shape) > 0.1*shape+0.05 {
			t.Errorf("Gamma(%g) mean %g", shape, mean)
		}
	}
}

func TestDirichlet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, alpha := range []float64{0.01, 0.1, 1, 10} {
		v := Dirichlet(rng, 6, alpha)
		if len(v) != 6 {
			t.Fatal("dimension wrong")
		}
		sum := 0.0
		for _, x := range v {
			if x < 0 {
				t.Fatalf("negative component %v", v)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("not normalized: %v", sum)
		}
	}
	// Low alpha concentrates: max component should usually dominate.
	dominant := 0
	for i := 0; i < 100; i++ {
		v := Dirichlet(rng, 5, 0.02)
		for _, x := range v {
			if x > 0.9 {
				dominant++
				break
			}
		}
	}
	if dominant < 60 {
		t.Errorf("Dirichlet(0.02) rarely concentrated: %d/100", dominant)
	}
}

func TestCategorical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	probs := []float64{0.1, 0.6, 0.3}
	counts := make([]int, 3)
	n := 30000
	for i := 0; i < n; i++ {
		counts[Categorical(rng, probs)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-p) > 0.03 {
			t.Errorf("Categorical[%d] = %g, want %g", i, got, p)
		}
	}
}

func TestZipfRank(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z := NewZipfRank(1.5, 1000)
	counts := make([]int, 11)
	n := 50000
	for i := 0; i < n; i++ {
		r := z.Sample(rng, 1000)
		if r < 1 || r > 1000 {
			t.Fatalf("rank %d out of range", r)
		}
		if r <= 10 {
			counts[r]++
		}
	}
	// Monotone decreasing frequencies for the head ranks.
	for r := 1; r < 5; r++ {
		if counts[r] < counts[r+1] {
			t.Errorf("rank %d (%d) less frequent than rank %d (%d)", r, counts[r], r+1, counts[r+1])
		}
	}
	// Rank 1 with skew 1.5 over 1000 items has probability ~0.38.
	p1 := float64(counts[1]) / float64(n)
	if p1 < 0.3 || p1 > 0.5 {
		t.Errorf("P(rank 1) = %g", p1)
	}
	// Degenerate domains.
	if z.Sample(rng, 1) != 1 || z.Sample(rng, 0) != 1 {
		t.Error("tiny domain sampling broken")
	}
}

func edgeSignature(p *prov.Graph) []uint64 {
	sig := make([]uint64, 0, p.NumEdges())
	for e := 0; e < p.NumEdges(); e++ {
		id := graph.EdgeID(e)
		sig = append(sig, uint64(p.PG().Src(id))<<32|uint64(p.PG().Dst(id)))
	}
	return sig
}

func TestPdDeterminism(t *testing.T) {
	a := Pd(PdConfig{N: 500, Seed: 9})
	b := Pd(PdConfig{N: 500, Seed: 9})
	sa, sb := edgeSignature(a), edgeSignature(b)
	if len(sa) != len(sb) {
		t.Fatal("same seed, different edge counts")
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed, different edges")
		}
	}
	c := Pd(PdConfig{N: 500, Seed: 10})
	sc := edgeSignature(c)
	same := len(sa) == len(sc)
	if same {
		for i := range sa {
			if sa[i] != sc[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical edge structure")
	}
}

func TestPdStructure(t *testing.T) {
	for _, n := range []int{100, 1000, 5000} {
		p := Pd(PdConfig{N: n, Seed: 1})
		if err := p.Validate(); err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		got := p.NumVertices()
		if got < n*8/10 || got > n*12/10 {
			t.Errorf("N=%d: vertex count %d off target", n, got)
		}
		wantAgents := int(math.Floor(math.Log(float64(n))))
		if len(p.Agents()) != wantAgents {
			t.Errorf("N=%d: agents %d, want %d", n, len(p.Agents()), wantAgents)
		}
		// Every activity uses >= 1 and generates >= 1 entity.
		var buf []graph.VertexID
		for _, a := range p.Activities() {
			if buf = p.InputsOf(a, buf[:0]); len(buf) < 1 {
				t.Fatalf("activity %d has no inputs", a)
			}
			if buf = p.GeneratedBy(a, buf[:0]); len(buf) < 1 {
				t.Fatalf("activity %d has no outputs", a)
			}
			if buf = p.AgentsOf(a, buf[:0]); len(buf) != 1 {
				t.Fatalf("activity %d has %d agents", a, len(buf))
			}
		}
		// Every non-seed entity has exactly one generator; inputs predate
		// their activity (order of being).
		for _, e := range p.Entities() {
			if buf = p.GeneratorsOf(e, buf[:0]); len(buf) > 1 {
				t.Fatalf("entity %d has %d generators", e, len(buf))
			}
		}
		for _, a := range p.Activities() {
			for _, in := range p.InputsOf(a, buf[:0]) {
				if p.Order(in) >= p.Order(a) {
					t.Fatalf("input %d not older than activity %d", in, a)
				}
			}
		}
	}
}

func TestQueryHelpers(t *testing.T) {
	p := Pd(PdConfig{N: 300, Seed: 2})
	src, dst := DefaultQuery(p)
	if len(src) != 2 || len(dst) != 2 {
		t.Fatal("default query shape wrong")
	}
	ents := p.Entities()
	if src[0] != ents[0] || dst[1] != ents[len(ents)-1] {
		t.Fatal("default query endpoints wrong")
	}
	for _, pct := range []int{0, 50, 99} {
		s2, d2 := QueryAtRank(p, pct)
		if len(s2) != 2 || len(d2) != 2 {
			t.Fatalf("rank %d query shape wrong", pct)
		}
		for _, s := range s2 {
			if p.KindOf(s) != prov.KindEntity {
				t.Fatal("non-entity source")
			}
		}
	}
}

func TestSdDeterminismAndShape(t *testing.T) {
	cfg := SdConfig{Alpha: 0.1, Activities: 10, Segments: 6, Seed: 11}
	p1, segs1 := Sd(cfg)
	p2, segs2 := Sd(cfg)
	if p1.NumVertices() != p2.NumVertices() || len(segs1) != len(segs2) {
		t.Fatal("Sd not deterministic")
	}
	if err := p1.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(segs1) != 6 {
		t.Fatalf("segment count %d", len(segs1))
	}
	// Segments are vertex-disjoint.
	seen := map[uint32]bool{}
	for _, s := range segs1 {
		acts := 0
		for _, v := range s.Vertices {
			if seen[uint32(v)] {
				t.Fatal("segments share a vertex")
			}
			seen[uint32(v)] = true
			if p1.KindOf(v) == prov.KindActivity {
				acts++
			}
		}
		if acts != 10 {
			t.Fatalf("segment has %d activities, want 10", acts)
		}
		if s.NumEdges() == 0 {
			t.Fatal("segment without edges")
		}
	}
	// Activity commands name states within range.
	for _, s := range segs1 {
		for _, v := range s.Vertices {
			if p1.KindOf(v) == prov.KindActivity {
				cmd := p1.PG().VertexProp(v, prov.PropCommand).AsString()
				if len(cmd) < 3 || cmd[:2] != "op" {
					t.Fatalf("bad command %q", cmd)
				}
			}
		}
	}
}
