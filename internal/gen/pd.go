package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/prov"
)

// PdConfig parameterizes the lifecycle provenance graph generator
// (paper Sec. V(a)). Zero-valued fields take the paper defaults.
type PdConfig struct {
	// N is the target total vertex count (entities + activities + agents).
	N int
	// WorkerSkew is sw, the Zipf skew of the agents' work rates
	// (default 1.2).
	WorkerSkew float64
	// LambdaIn is lambda_i, the Poisson mean of extra activity inputs
	// (each activity uses 1+m entities; default 2).
	LambdaIn float64
	// LambdaOut is lambda_o, the Poisson mean of extra activity outputs
	// (default 2).
	LambdaOut float64
	// SelectSkew is se, the Zipf skew for picking input entities at their
	// rank in the reverse order of being (default 1.5).
	SelectSkew float64
	// NewVersionProb is the probability that an output entity is a new
	// version of an existing artifact (adds a wasDerivedFrom edge;
	// default 0.6).
	NewVersionProb float64
	// Seed drives the deterministic RNG.
	Seed int64
}

func (c PdConfig) withDefaults() PdConfig {
	if c.WorkerSkew == 0 {
		c.WorkerSkew = 1.2
	}
	if c.LambdaIn == 0 {
		c.LambdaIn = 2
	}
	if c.LambdaOut == 0 {
		c.LambdaOut = 2
	}
	if c.SelectSkew == 0 {
		c.SelectSkew = 1.5
	}
	if c.NewVersionProb == 0 {
		c.NewVersionProb = 0.6
	}
	if c.N < 10 {
		c.N = 10
	}
	return c
}

// commandPool is the activity vocabulary; commands double as the property
// used by the paper's property-constrained SimProv extension.
var commandPool = []string{"train", "preprocess", "split", "evaluate", "plot", "merge", "clean", "tune"}

// Pd generates a synthetic collaborative-lifecycle provenance graph with
// about cfg.N vertices.
func Pd(cfg PdConfig) *prov.Graph {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := prov.New()

	numAgents := int(math.Floor(math.Log(float64(cfg.N))))
	if numAgents < 1 {
		numAgents = 1
	}
	agents := make([]graph.VertexID, numAgents)
	for i := range agents {
		agents[i] = p.NewAgent(fmt.Sprintf("member%d", i))
	}
	workerPick := NewZipfChoice(cfg.WorkerSkew, numAgents)

	numActivities := int(float64(cfg.N) / (2 + cfg.LambdaOut))
	maxEntities := cfg.N + int(cfg.LambdaOut+2)*4
	rankPick := NewZipfRank(cfg.SelectSkew, maxEntities)

	type artifact struct {
		name    string
		lastVer graph.VertexID
		version int
	}
	var artifacts []artifact
	var entities []graph.VertexID

	newEntity := func(gen graph.VertexID, hasGen bool) graph.VertexID {
		var e graph.VertexID
		if len(artifacts) > 0 && rng.Float64() < cfg.NewVersionProb {
			ai := rng.Intn(len(artifacts))
			artifacts[ai].version++
			e = p.NewEntity(fmt.Sprintf("%s-v%d", artifacts[ai].name, artifacts[ai].version))
			p.PG().SetVertexProp(e, prov.PropFilename, graph.String(artifacts[ai].name))
			p.PG().SetVertexProp(e, prov.PropVersion, graph.Int(int64(artifacts[ai].version)))
			if hasGen {
				p.WasGeneratedBy(e, gen)
			}
			p.WasDerivedFrom(e, artifacts[ai].lastVer)
			artifacts[ai].lastVer = e
		} else {
			name := fmt.Sprintf("artifact%d", len(artifacts))
			e = p.NewEntity(name + "-v1")
			p.PG().SetVertexProp(e, prov.PropFilename, graph.String(name))
			p.PG().SetVertexProp(e, prov.PropVersion, graph.Int(1))
			if hasGen {
				p.WasGeneratedBy(e, gen)
			}
			artifacts = append(artifacts, artifact{name: name, lastVer: e, version: 1})
		}
		entities = append(entities, e)
		return e
	}

	// Seed entities: imported datasets attributed to agents.
	numSeeds := 1 + int(cfg.LambdaIn)
	for i := 0; i < numSeeds; i++ {
		e := newEntity(0, false)
		p.PG().SetVertexProp(e, "url", graph.String(fmt.Sprintf("http://data.example/%d", i)))
		p.WasAttributedTo(e, agents[workerPick.Sample(rng, numAgents)])
	}

	for act := 0; act < numActivities && p.NumVertices() < cfg.N; act++ {
		cmd := commandPool[rng.Intn(len(commandPool))]
		a := p.NewActivity(cmd)
		p.PG().SetVertexProp(a, prov.PropCommand, graph.String(cmd))
		p.PG().SetVertexProp(a, "options", graph.String(fmt.Sprintf("-p%d", rng.Intn(4))))
		p.WasAssociatedWith(a, agents[workerPick.Sample(rng, numAgents)])

		// Inputs: 1+m entities picked by Zipf rank over reverse order of
		// being (rank 1 = most recent).
		m := 1 + Poisson(rng, cfg.LambdaIn)
		picked := make(map[graph.VertexID]bool, m)
		for len(picked) < m && len(picked) < len(entities) {
			rank := rankPick.Sample(rng, len(entities))
			e := entities[len(entities)-rank]
			if !picked[e] {
				picked[e] = true
				p.Used(a, e)
			}
		}
		// Outputs: 1+n fresh entities.
		n := 1 + Poisson(rng, cfg.LambdaOut)
		for i := 0; i < n; i++ {
			newEntity(a, true)
		}
	}
	return p
}

// DefaultQuery returns the paper's "most challenging" PgSeg query on a Pd
// graph: the first two entities as sources, the last two as destinations.
func DefaultQuery(p *prov.Graph) (src, dst []graph.VertexID) {
	ents := p.Entities()
	if len(ents) < 4 {
		return ents[:1], ents[len(ents)-1:]
	}
	return []graph.VertexID{ents[0], ents[1]}, []graph.VertexID{ents[len(ents)-2], ents[len(ents)-1]}
}

// QueryAtRank returns a PgSeg query whose sources sit at the given
// percentile of the entity order of being (paper Fig. 5d varies this).
func QueryAtRank(p *prov.Graph, percent int) (src, dst []graph.VertexID) {
	ents := p.Entities()
	if len(ents) < 4 {
		return DefaultQuery(p)
	}
	idx := len(ents) * percent / 100
	if idx > len(ents)-4 {
		idx = len(ents) - 4
	}
	return []graph.VertexID{ents[idx], ents[idx+1]}, []graph.VertexID{ents[len(ents)-2], ents[len(ents)-1]}
}
