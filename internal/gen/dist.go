// Package gen implements the paper's two synthetic workload generators
// (Sec. V, "Dataset Description"):
//
//   - Pd: lifecycle provenance graphs for collaborative analytics projects
//     (Zipf-skewed worker rates, Poisson activity input/output sizes,
//     Zipf-skewed input selection over the reverse order of being);
//
//   - Sd: sets of conceptually similar segments drawn from a Markov chain
//     whose transition rows follow a symmetric Dirichlet prior.
//
// All sampling is deterministic given a seed.
package gen

import (
	"math"
	"math/rand"
	"sort"
)

// Poisson samples a Poisson-distributed count with mean lambda (Knuth's
// method; adequate for the small means the generators use).
func Poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // overflow guard for absurd lambda
		}
	}
}

// Gamma samples from Gamma(shape, 1) using Marsaglia-Tsang, with Johnk's
// boost for shape < 1.
func Gamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return Gamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet samples a k-dimensional symmetric Dirichlet(alpha) vector.
func Dirichlet(rng *rand.Rand, k int, alpha float64) []float64 {
	out := make([]float64, k)
	sum := 0.0
	for i := range out {
		out[i] = Gamma(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Extremely concentrated prior: all mass on one state.
		out[rng.Intn(k)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Categorical samples an index from a probability vector.
func Categorical(rng *rand.Rand, probs []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}

// ZipfRank samples ranks 1..n with P(r) proportional to r^-s over a
// growing domain: the cumulative weights are shared across draws because
// the weight of rank r does not depend on which item currently holds the
// rank (paper: input entities are picked at their rank in the reverse
// order of being).
type ZipfRank struct {
	s   float64
	cum []float64 // cum[r] = sum_{1..r} r^-s; cum[0] = 0
}

// NewZipfRank prepares a rank sampler for skew s supporting domains up to
// maxN.
func NewZipfRank(s float64, maxN int) *ZipfRank {
	z := &ZipfRank{s: s, cum: make([]float64, maxN+1)}
	for r := 1; r <= maxN; r++ {
		z.cum[r] = z.cum[r-1] + math.Pow(float64(r), -s)
	}
	return z
}

// Sample draws a rank in [1, n]; n must not exceed the prepared maximum.
func (z *ZipfRank) Sample(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 1
	}
	if n >= len(z.cum) {
		n = len(z.cum) - 1
	}
	u := rng.Float64() * z.cum[n]
	// Smallest r with cum[r] >= u.
	r := sort.SearchFloat64s(z.cum[1:n+1], u) + 1
	if r > n {
		r = n
	}
	return r
}

// ZipfChoice samples an index in [0, n) with P(i) proportional to
// (i+1)^-s (used for the fixed-size agent pool with work-rate skew sw).
type ZipfChoice struct{ ranks *ZipfRank }

// NewZipfChoice prepares a fixed-domain Zipf sampler.
func NewZipfChoice(s float64, n int) *ZipfChoice {
	return &ZipfChoice{ranks: NewZipfRank(s, n)}
}

// Sample draws an index in [0, n).
func (z *ZipfChoice) Sample(rng *rand.Rand, n int) int {
	return z.ranks.Sample(rng, n) - 1
}
