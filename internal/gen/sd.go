package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/prov"
)

// SdConfig parameterizes the similar-segment generator (paper Sec. V(b)):
// each segment is a walk of a k-state Markov chain whose transition rows
// are drawn once from a symmetric Dirichlet(alpha) prior; a low alpha
// concentrates the transitions (stable pipelines), a high alpha makes them
// uniform (exploratory project stages). Zero-valued fields take the paper
// defaults (alpha=0.1, k=5, n=20, |S|=10).
type SdConfig struct {
	// States is k, the number of activity types.
	States int
	// Alpha is the Dirichlet concentration parameter.
	Alpha float64
	// Activities is n, the number of activities per segment.
	Activities int
	// Segments is |S|.
	Segments int
	// LambdaIn / LambdaOut are the Poisson means for activity input /
	// output sizes (defaults 2, matching Pd).
	LambdaIn, LambdaOut float64
	// SelectSkew is se for input selection (default 1.5).
	SelectSkew float64
	// Seed drives the deterministic RNG.
	Seed int64
}

func (c SdConfig) withDefaults() SdConfig {
	if c.States == 0 {
		c.States = 5
	}
	if c.Alpha == 0 {
		c.Alpha = 0.1
	}
	if c.Activities == 0 {
		c.Activities = 20
	}
	if c.Segments == 0 {
		c.Segments = 10
	}
	if c.LambdaIn == 0 {
		c.LambdaIn = 2
	}
	if c.LambdaOut == 0 {
		c.LambdaOut = 2
	}
	if c.SelectSkew == 0 {
		c.SelectSkew = 1.5
	}
	return c
}

// Sd generates |S| conceptually similar segments as disjoint subgraphs of
// one provenance graph. Activity vertices carry a "command" property
// naming their state ("op3"), which is what PgSum's property aggregation
// matches on; entity vertices all share one equivalence label, as the
// paper specifies.
func Sd(cfg SdConfig) (*prov.Graph, []*core.Segment) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := prov.New()

	// One transition matrix shared by all segments.
	matrix := make([][]float64, cfg.States)
	for i := range matrix {
		matrix[i] = Dirichlet(rng, cfg.States, cfg.Alpha)
	}
	initial := Dirichlet(rng, cfg.States, 1.0)

	maxEnts := cfg.Activities*(2+int(cfg.LambdaOut))*2 + 8
	rankPick := NewZipfRank(cfg.SelectSkew, maxEnts)
	agent := p.NewAgent("team")

	segments := make([]*core.Segment, 0, cfg.Segments)
	for si := 0; si < cfg.Segments; si++ {
		var vertices []graph.VertexID
		var entities []graph.VertexID

		newEntity := func() graph.VertexID {
			e := p.NewEntity(fmt.Sprintf("s%d-e%d", si, len(entities)))
			entities = append(entities, e)
			vertices = append(vertices, e)
			return e
		}
		numSeeds := 1 + int(cfg.LambdaIn)
		for i := 0; i < numSeeds; i++ {
			newEntity()
		}

		state := Categorical(rng, initial)
		for ai := 0; ai < cfg.Activities; ai++ {
			cmd := fmt.Sprintf("op%d", state)
			a := p.NewActivity(cmd)
			p.PG().SetVertexProp(a, prov.PropCommand, graph.String(cmd))
			p.WasAssociatedWith(a, agent)
			vertices = append(vertices, a)

			m := 1 + Poisson(rng, cfg.LambdaIn)
			picked := make(map[graph.VertexID]bool, m)
			for len(picked) < m && len(picked) < len(entities) {
				rank := rankPick.Sample(rng, len(entities))
				e := entities[len(entities)-rank]
				if !picked[e] {
					picked[e] = true
					p.Used(a, e)
				}
			}
			n := 1 + Poisson(rng, cfg.LambdaOut)
			for i := 0; i < n; i++ {
				e := newEntity()
				p.WasGeneratedBy(e, a)
			}
			state = Categorical(rng, matrix[state])
		}
		segments = append(segments, core.NewSegment(p, vertices))
	}
	return p, segments
}

// SdSumOptions returns the PgSum options the Sd experiments use: activities
// aggregate on their command (state), entities collapse to one label, and
// provenance types are 1-hop (the paper's Fig. 2(e) resolution).
func SdSumOptions() core.SumOptions {
	return core.SumOptions{
		K: core.Aggregation{
			Activity: []string{prov.PropCommand},
		},
		TypeRadius: 1,
	}
}
