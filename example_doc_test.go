package provdb_test

import (
	"fmt"
	"sort"

	provdb "repro"
)

// Example demonstrates recording a tiny lifecycle and asking how a result
// was generated.
func Example() {
	g := provdb.New()
	data := g.Import("alice", "dataset", "http://data.example/d")
	model := g.Import("alice", "model", "")
	_, out := g.Run("alice", "train", []provdb.VertexID{model, data}, []string{"weights"})

	seg, err := g.Segment(provdb.Query{
		Src: []provdb.VertexID{data},
		Dst: []provdb.VertexID{out[0]},
	})
	if err != nil {
		panic(err)
	}
	names := make([]string, 0, len(seg.Vertices))
	for _, v := range seg.Vertices {
		names = append(names, g.Name(v))
	}
	sort.Strings(names)
	fmt.Println(names)
	// Output: [alice dataset-v1 model-v1 train weights-v1]
}

// ExampleSummarize shows how two similar trails merge into one summary.
func ExampleSummarize() {
	g := provdb.New()
	var segs []*provdb.Segment
	for day := 0; day < 2; day++ {
		data := g.Import("team", fmt.Sprintf("day%d-data", day), "")
		_, out := g.Run("team", "train", []provdb.VertexID{data}, []string{fmt.Sprintf("day%d-weights", day)})
		seg, err := g.Segment(provdb.Query{
			Src: []provdb.VertexID{data},
			Dst: []provdb.VertexID{out[0]},
		})
		if err != nil {
			panic(err)
		}
		segs = append(segs, seg)
	}
	psg, err := provdb.Summarize(segs, provdb.SumOptions{
		K:          provdb.Aggregation{Activity: []string{"command"}},
		TypeRadius: 1,
	})
	if err != nil {
		panic(err)
	}
	// Both days' trains merge, both datasets merge, both weights merge,
	// and the team agent occurrences merge.
	fmt.Printf("%d occurrences -> %d summary nodes\n", psg.InputVertices, len(psg.Nodes))
	// Output: 8 occurrences -> 4 summary nodes
}

// ExampleGraph_Cypher runs a query through the baseline Cypher engine.
func ExampleGraph_Cypher() {
	g := provdb.New()
	data := g.Import("alice", "dataset", "")
	_, _ = g.Run("alice", "train", []provdb.VertexID{data}, []string{"weights"})

	res, err := g.Cypher("match (a:A)-[:U]->(e:E) return id(a), id(e)", provdb.CypherOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Rows), "used-edges")
	// Output: 1 used-edges
}
