// Command provdb is the CLI toolkit of the lifecycle provenance system
// (paper Fig. 1): generate synthetic projects, inspect stored graphs, run
// segmentation and summarization queries, and export DOT / PROV-JSON.
//
// Usage:
//
//	provdb gen   -n 10000 -seed 1 -out project.pg
//	provdb stats -in project.pg
//	provdb seg   -in project.pg -src 0,1 -dst 9000,9001 [-exclude A,D] [-expand 9000:2] [-dot out.dot]
//	provdb sum   -in project.pg -seg "0,1>100,101;0,1>200,201" [-k 1]
//	provdb demo  (runs the paper's Fig. 2 example end to end)
//	provdb export-json -in project.pg
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	provdb "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "seg":
		err = cmdSeg(os.Args[2:])
	case "sum":
		err = cmdSum(os.Args[2:])
	case "demo":
		err = cmdDemo()
	case "export-json":
		err = cmdExportJSON(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "provdb: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: provdb <gen|stats|seg|sum|demo|export-json> [flags]`)
}

func loadGraph(path string) (*provdb.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return provdb.Load(f)
}

func parseIDs(s string) ([]provdb.VertexID, error) {
	if s == "" {
		return nil, fmt.Errorf("empty vertex list")
	}
	parts := strings.Split(s, ",")
	out := make([]provdb.VertexID, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.ParseUint(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad vertex id %q", p)
		}
		out = append(out, provdb.VertexID(n))
	}
	return out, nil
}

func parseRels(s string) ([]provdb.Rel, error) {
	if s == "" {
		return nil, nil
	}
	var out []provdb.Rel
	for _, p := range strings.Split(s, ",") {
		switch strings.ToUpper(strings.TrimSpace(p)) {
		case "U":
			out = append(out, provdb.RelUsed)
		case "G":
			out = append(out, provdb.RelGen)
		case "S":
			out = append(out, provdb.RelAssoc)
		case "A":
			out = append(out, provdb.RelAttr)
		case "D":
			out = append(out, provdb.RelDeriv)
		default:
			return nil, fmt.Errorf("unknown relationship %q (want U,G,S,A,D)", p)
		}
	}
	return out, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	n := fs.Int("n", 10000, "target vertex count")
	seed := fs.Int64("seed", 1, "random seed")
	se := fs.Float64("se", 1.5, "input selection skew")
	li := fs.Float64("li", 2, "activity input mean (lambda_i)")
	out := fs.String("out", "project.pg", "output file")
	fs.Parse(args)

	g := provdb.GeneratePd(provdb.PdConfig{N: *n, Seed: *seed, SelectSkew: *se, LambdaIn: *li})
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.Save(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d vertices, %d edges\n", *out, g.NumVertices(), g.NumEdges())
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "project.pg", "input file")
	fs.Parse(args)
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	st := g.Prov().PG().Stats()
	fmt.Printf("vertices: %d  edges: %d\n", st.Vertices, st.Edges)
	for label, count := range st.VertexByLabel {
		fmt.Printf("  vertex %-6s %d\n", label, count)
	}
	for label, count := range st.EdgeByLabel {
		fmt.Printf("  edge   %-6s %d\n", label, count)
	}
	fmt.Printf("max out-degree: %d  max in-degree: %d\n", st.MaxOutDegree, st.MaxInDegree)
	return g.Validate()
}

func cmdSeg(args []string) error {
	fs := flag.NewFlagSet("seg", flag.ExitOnError)
	in := fs.String("in", "project.pg", "input file")
	srcS := fs.String("src", "", "source entity ids, comma separated")
	dstS := fs.String("dst", "", "destination entity ids, comma separated")
	excl := fs.String("exclude", "", "edge types to exclude (e.g. A,D)")
	expand := fs.String("expand", "", "expansion spec id[,id...]:k")
	solver := fs.String("solver", "tst", "VC2 solver: tst, alg, cflrb")
	dot := fs.String("dot", "", "write the segment as DOT to this file")
	fs.Parse(args)

	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	src, err := parseIDs(*srcS)
	if err != nil {
		return fmt.Errorf("-src: %w", err)
	}
	dst, err := parseIDs(*dstS)
	if err != nil {
		return fmt.Errorf("-dst: %w", err)
	}
	rels, err := parseRels(*excl)
	if err != nil {
		return err
	}
	q := provdb.Query{Src: src, Dst: dst, Boundary: provdb.Boundary{ExcludeRels: rels}}
	if *expand != "" {
		parts := strings.SplitN(*expand, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-expand wants id[,id...]:k")
		}
		ids, err := parseIDs(parts[0])
		if err != nil {
			return err
		}
		k, err := strconv.Atoi(parts[1])
		if err != nil {
			return err
		}
		q.Boundary.Expansions = []provdb.Expansion{{Within: ids, K: k}}
	}
	opts := provdb.SegmentOptions{}
	switch *solver {
	case "tst":
		opts.Solver = provdb.SolverTst
	case "alg":
		opts.Solver = provdb.SolverAlg
	case "cflrb":
		opts.Solver = provdb.SolverCflrB
	default:
		return fmt.Errorf("unknown solver %q", *solver)
	}
	seg, err := g.SegmentWith(q, opts)
	if err != nil {
		return err
	}
	seg.Render(os.Stdout)
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		return seg.WriteDOT(f)
	}
	return nil
}

func cmdSum(args []string) error {
	fs := flag.NewFlagSet("sum", flag.ExitOnError)
	in := fs.String("in", "project.pg", "input file")
	segSpec := fs.String("seg", "", `segment queries "src>dst;src>dst" (ids comma separated)`)
	radius := fs.Int("k", 1, "provenance type radius Rk")
	aggA := fs.String("agg-activity", "command", "activity properties to aggregate on (comma separated)")
	aggE := fs.String("agg-entity", "", "entity properties to aggregate on")
	dot := fs.String("dot", "", "write the summary as DOT to this file")
	fs.Parse(args)

	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	var segs []*provdb.Segment
	for _, spec := range strings.Split(*segSpec, ";") {
		parts := strings.SplitN(strings.TrimSpace(spec), ">", 2)
		if len(parts) != 2 {
			return fmt.Errorf(`-seg wants "src>dst;src>dst"`)
		}
		src, err := parseIDs(parts[0])
		if err != nil {
			return err
		}
		dst, err := parseIDs(parts[1])
		if err != nil {
			return err
		}
		seg, err := g.Segment(provdb.Query{Src: src, Dst: dst})
		if err != nil {
			return err
		}
		segs = append(segs, seg)
	}
	opts := provdb.SumOptions{TypeRadius: *radius}
	if *aggA != "" {
		opts.K.Activity = strings.Split(*aggA, ",")
	}
	if *aggE != "" {
		opts.K.Entity = strings.Split(*aggE, ",")
	}
	psg, err := provdb.Summarize(segs, opts)
	if err != nil {
		return err
	}
	psg.Render(os.Stdout)
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		return psg.WriteDOT(f)
	}
	return nil
}

func cmdDemo() error {
	g, names := provdb.Fig2Lifecycle()
	fmt.Println("Fig. 2 lifecycle loaded:", g.NumVertices(), "vertices,", g.NumEdges(), "edges")
	for _, q := range []struct {
		name  string
		query provdb.Query
	}{
		{"Q1 (how is weights-v2 connected to dataset-v1)", provdb.Fig2Q1(names)},
		{"Q2 (how did Bob derive logs-v3)", provdb.Fig2Q2(names)},
	} {
		fmt.Println("--", q.name)
		seg, err := g.Segment(q.query)
		if err != nil {
			return err
		}
		seg.Render(os.Stdout)
	}
	s1, _ := g.Segment(provdb.Fig2Q1(names))
	s2, _ := g.Segment(provdb.Fig2Q2(names))
	psg, err := provdb.Summarize([]*provdb.Segment{s1, s2}, provdb.Fig2Q3Options())
	if err != nil {
		return err
	}
	fmt.Println("-- Q3 (summarize Q1 and Q2)")
	psg.Render(os.Stdout)
	return nil
}

func cmdExportJSON(args []string) error {
	fs := flag.NewFlagSet("export-json", flag.ExitOnError)
	in := fs.String("in", "project.pg", "input file")
	fs.Parse(args)
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	return g.ExportJSON(os.Stdout)
}
