// Command provd is the provenance query daemon: it loads a .pg graph (or
// generates a synthetic lifecycle graph) and serves the PgSeg / PgSum /
// Cypher operators plus lifecycle ingestion over an HTTP JSON API.
//
// Usage:
//
//	provd -in project.pg -addr :8042
//	provd -gen 10000 -seed 1 -addr :8042
//	provd -data /var/lib/provd -addr :8042
//
// With -data the daemon is durable: every committed ingest batch is
// appended to a write-ahead log in the data directory (fsynced per -fsync)
// before it is published, a background checkpointer persists the full graph
// every -checkpoint-every batches, and a restart recovers the exact
// pre-crash epoch from checkpoint + log tail. -in/-gen seed a fresh data
// directory only; restarting over existing state refuses them.
//
// Endpoints (see internal/server):
//
//	POST /segment    {"src":[0,1],"dst":[9000],"exclude_rels":["A","D"]}
//	POST /summarize  {"segments":[{"src":[0],"dst":[50]},{"src":[1],"dst":[60]}]}
//	POST /query      {"query":"match (e:E) where id(e) in [0, 1] return e"}
//	POST /adjust     {"segment":{"src":[0],"dst":[9000]},"exclude_kinds":["U"]}
//	POST /ingest     {"ops":[{"op":"run","agent":"alice","command":"train",
//	                          "inputs":[3],"outputs":["model"]}]}
//	GET  /stats
//	GET  /metrics
//	GET  /healthz
//	GET  /export?format=prov-json|dot|pg
//
// All reads are served lock-free from an immutable epoch snapshot; ingest
// publishes a new snapshot per committed batch.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8042", "listen address")
	in := flag.String("in", "", "input .pg graph (mutually exclusive with -gen)")
	genN := flag.Int("gen", 0, "generate a synthetic Pd lifecycle graph with this many vertices")
	seed := flag.Int64("seed", 1, "generator seed (with -gen)")
	cacheCap := flag.Int("cache", 256, "segment result cache capacity (entries)")
	dataDir := flag.String("data", "", "data directory for durable serving (write-ahead log + checkpoints); empty serves memory-only")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always (every commit), interval (background flush), never (OS-paced)")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background flush period with -fsync interval")
	checkpointEvery := flag.Int("checkpoint-every", 256, "committed batches between checkpoints (bounds log growth and restart replay)")
	flag.Parse()

	store, err := openStore(*dataDir, *in, *genN, *seed, *cacheCap, *fsync, *fsyncInterval, *checkpointEvery)
	if err != nil {
		log.Fatalf("provd: %v", err)
	}
	defer store.Close()

	st := store.Stats()
	log.Printf("provd: serving %d vertices, %d edges on %s (epoch %d, cache capacity %d)",
		st.Vertices, st.Edges, *addr, st.Epoch, *cacheCap)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewServer(store),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("provd: %v", err)
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			store.Close()
			log.Fatalf("provd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("provd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("provd: shutdown: %v", err)
		}
		// The deferred store.Close seals the WAL and writes a final
		// checkpoint once no more requests can commit.
	}
}

// openStore builds the memory-only or durable store per the flags.
func openStore(dataDir, in string, genN int, seed int64, cacheCap int, fsync string, fsyncInterval time.Duration, checkpointEvery int) (*server.Store, error) {
	if dataDir == "" {
		p, err := openGraph(in, genN, seed)
		if err != nil {
			return nil, err
		}
		return server.NewStore(p, cacheCap), nil
	}
	policy, err := wal.ParseSyncPolicy(fsync)
	if err != nil {
		return nil, err
	}
	// -in/-gen describe a starting graph; recovered state IS the graph, so
	// combining them would silently discard one of the two. Make the
	// operator choose (a fresh directory, or dropping the seed flags).
	if in != "" || genN > 0 {
		has, err := wal.DirHasState(dataDir)
		if err != nil {
			return nil, err
		}
		if has {
			return nil, fmt.Errorf("-data %s already holds state; restart without -in/-gen (or point -data at a fresh directory)", dataDir)
		}
	}
	store, rcv, err := server.OpenDurable(server.DurableOptions{
		Dir:             dataDir,
		Fsync:           policy,
		SyncInterval:    fsyncInterval,
		CheckpointEvery: checkpointEvery,
		CacheCap:        cacheCap,
	}, func() (*prov.Graph, error) { return openGraph(in, genN, seed) })
	if err != nil {
		return nil, err
	}
	if rcv.Fresh {
		log.Printf("provd: initialized data directory %s (fsync=%s, checkpoint every %d batches)",
			dataDir, policy, checkpointEvery)
	} else {
		log.Printf("provd: recovered epoch %d from %s (checkpoint %d + %d WAL records, torn tail: %v)",
			rcv.Epoch, dataDir, rcv.CheckpointEpoch, rcv.Replayed, rcv.TornTail)
	}
	return store, nil
}

// openGraph loads the input .pg file, or generates a Pd graph, or (with
// neither flag) starts empty for pure-ingest serving.
func openGraph(in string, genN int, seed int64) (*prov.Graph, error) {
	switch {
	case in != "" && genN > 0:
		return nil, fmt.Errorf("-in and -gen are mutually exclusive")
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		pg, err := graph.Load(f)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", in, err)
		}
		p := prov.Wrap(pg)
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("validate %s: %w", in, err)
		}
		return p, nil
	case genN > 0:
		return gen.Pd(gen.PdConfig{N: genN, Seed: seed}), nil
	default:
		return prov.New(), nil
	}
}
