// Command provd is the provenance query daemon: it hosts one or more named
// provenance stores (shards) — each a .pg graph, a generated synthetic
// lifecycle graph, or a pure-ingest empty graph — and serves the PgSeg /
// PgSum / Cypher operators plus lifecycle ingestion over an HTTP JSON API.
//
// Usage:
//
//	provd -in project.pg -addr :8042
//	provd -gen 10000 -seed 1 -addr :8042
//	provd -data /var/lib/provd -addr :8042
//	provd -data /var/lib/provd -stores audit,ml -addr :8042
//
// With -data the daemon is durable: every committed ingest batch is made
// durable in the store's write-ahead log (fsynced per -fsync; concurrent
// batches share one fsync via group commit unless -group-commit=false)
// before it is published, a background checkpointer persists each store's
// graph every -checkpoint-every batches, and a restart recovers every
// store's exact pre-crash epoch from its checkpoint + log tail. Each store
// owns the subdirectory -data/<name>/; every subdirectory holding state is
// recovered at boot even if not named in -stores. -in/-gen seed a fresh
// default store only; restarting over existing state refuses them.
//
// Endpoints (see internal/server; every store-scoped endpoint also exists
// unprefixed against the store named "default"):
//
//	POST /stores/{name}/segment    {"src":[0,1],"dst":[9000],"exclude_rels":["A","D"]}
//	POST /stores/{name}/summarize  {"segments":[{"src":[0],"dst":[50]},{"src":[1],"dst":[60]}]}
//	POST /stores/{name}/query      {"query":"match (e:E) where id(e) in [0, 1] return e"}
//	POST /stores/{name}/adjust     {"segment":{"src":[0],"dst":[9000]},"exclude_kinds":["U"]}
//	POST /stores/{name}/ingest     {"ops":[{"op":"run","agent":"alice","command":"train",
//	                                        "inputs":[3],"outputs":["model"]}]}
//	GET  /stores/{name}/stats
//	GET  /stores/{name}/metrics
//	GET  /stores/{name}/healthz
//	GET  /stores/{name}/export?format=prov-json|dot|pg
//	PUT  /stores/{name}            create a store at runtime
//	GET  /stores                   list stores
//
// All reads are served lock-free from the routed store's immutable epoch
// snapshot; ingest publishes a new snapshot per committed batch. Stores are
// independent shards: ingest into one never blocks, fsyncs with, or
// invalidates caches of another.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8042", "listen address")
	in := flag.String("in", "", "input .pg graph seeding the default store (mutually exclusive with -gen)")
	genN := flag.Int("gen", 0, "generate a synthetic Pd lifecycle graph with this many vertices as the default store")
	seed := flag.Int64("seed", 1, "generator seed (with -gen)")
	cacheCap := flag.Int("cache", 256, "segment result cache capacity per store (entries)")
	stores := flag.String("stores", "", "comma-separated extra store names to open or create at boot (the \"default\" store always exists)")
	dataDir := flag.String("data", "", "root data directory for durable serving (per-store write-ahead log + checkpoints under <data>/<store>/); empty serves memory-only")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always (every commit), interval (background flush), never (OS-paced)")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background flush period with -fsync interval")
	checkpointEvery := flag.Int("checkpoint-every", 256, "committed batches between checkpoints per store (bounds log growth and restart replay)")
	groupCommit := flag.Bool("group-commit", true, "amortize WAL fsyncs across concurrent ingest batches (one fsync per commit group instead of per batch)")
	flag.Parse()

	reg, err := openRegistry(*dataDir, *stores, *in, *genN, *seed, *cacheCap, *fsync, *fsyncInterval, *checkpointEvery, *groupCommit)
	if err != nil {
		log.Fatalf("provd: %v", err)
	}
	defer reg.Close()

	st := reg.Default().Stats()
	log.Printf("provd: serving %d stores (default: %d vertices, %d edges, epoch %d) on %s (cache capacity %d/store)",
		len(reg.Names()), st.Vertices, st.Edges, st.Epoch, *addr, *cacheCap)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewMultiServer(reg),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("provd: %v", err)
	}
	// The resolved address matters when -addr asked for port 0.
	log.Printf("provd: listening on %s", ln.Addr())

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			reg.Close()
			log.Fatalf("provd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("provd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("provd: shutdown: %v", err)
		}
		// The deferred reg.Close seals every store's WAL and writes final
		// checkpoints once no more requests can commit.
	}
}

// openRegistry builds the memory-only or durable store registry per the
// flags.
func openRegistry(dataDir, stores, in string, genN int, seed int64, cacheCap int, fsync string, fsyncInterval time.Duration, checkpointEvery int, groupCommit bool) (*server.Registry, error) {
	var extra []string
	for _, name := range strings.Split(stores, ",") {
		if name = strings.TrimSpace(name); name != "" {
			extra = append(extra, name)
		}
	}
	opts := server.RegistryOptions{
		DataDir:         dataDir,
		CheckpointEvery: checkpointEvery,
		CacheCap:        cacheCap,
		NoGroupCommit:   !groupCommit,
	}
	if dataDir != "" {
		policy, err := wal.ParseSyncPolicy(fsync)
		if err != nil {
			return nil, err
		}
		opts.Fsync = policy
		opts.SyncInterval = fsyncInterval
		// -in/-gen describe a starting graph; recovered state IS the graph,
		// so combining them would silently discard one of the two. Make the
		// operator choose (a fresh directory, or dropping the seed flags).
		// The default store's state lives in <data>/default/, or directly in
		// <data>/ for pre-sharding directories.
		if in != "" || genN > 0 {
			for _, dir := range []string{dataDir, filepath.Join(dataDir, server.DefaultStore)} {
				has, err := wal.DirHasState(dir)
				if err != nil {
					return nil, err
				}
				if has {
					return nil, fmt.Errorf("-data %s already holds state; restart without -in/-gen (or point -data at a fresh directory)", dataDir)
				}
			}
		}
	}
	reg, rcvs, err := server.OpenRegistry(opts, extra, func() (*prov.Graph, error) { return openGraph(in, genN, seed) })
	if err != nil {
		return nil, err
	}
	for _, sr := range rcvs {
		switch {
		case dataDir == "":
			// memory-only: nothing recovered, nothing durable
		case sr.Rcv.Fresh:
			log.Printf("provd: store %q: initialized %s (fsync=%s, group commit %v, checkpoint every %d batches)",
				sr.Name, filepath.Join(dataDir, sr.Name), fsync, groupCommit, checkpointEvery)
		default:
			log.Printf("provd: store %q: recovered epoch %d (checkpoint %d + %d WAL records, torn tail: %v)",
				sr.Name, sr.Rcv.Epoch, sr.Rcv.CheckpointEpoch, sr.Rcv.Replayed, sr.Rcv.TornTail)
		}
	}
	return reg, nil
}

// openGraph loads the input .pg file, or generates a Pd graph, or (with
// neither flag) starts empty for pure-ingest serving.
func openGraph(in string, genN int, seed int64) (*prov.Graph, error) {
	switch {
	case in != "" && genN > 0:
		return nil, fmt.Errorf("-in and -gen are mutually exclusive")
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		pg, err := graph.Load(f)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", in, err)
		}
		p := prov.Wrap(pg)
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("validate %s: %w", in, err)
		}
		return p, nil
	case genN > 0:
		return gen.Pd(gen.PdConfig{N: genN, Seed: seed}), nil
	default:
		return prov.New(), nil
	}
}
