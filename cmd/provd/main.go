// Command provd is the provenance query daemon: it loads a .pg graph (or
// generates a synthetic lifecycle graph) and serves the PgSeg / PgSum /
// Cypher operators plus lifecycle ingestion over an HTTP JSON API.
//
// Usage:
//
//	provd -in project.pg -addr :8042
//	provd -gen 10000 -seed 1 -addr :8042
//
// Endpoints (see internal/server):
//
//	POST /segment    {"src":[0,1],"dst":[9000],"exclude_rels":["A","D"]}
//	POST /summarize  {"segments":[{"src":[0],"dst":[50]},{"src":[1],"dst":[60]}]}
//	POST /query      {"query":"match (e:E) where id(e) in [0, 1] return e"}
//	POST /adjust     {"segment":{"src":[0],"dst":[9000]},"exclude_kinds":["U"]}
//	POST /ingest     {"ops":[{"op":"run","agent":"alice","command":"train",
//	                          "inputs":[3],"outputs":["model"]}]}
//	GET  /stats
//	GET  /metrics
//	GET  /healthz
//	GET  /export?format=prov-json|dot|pg
//
// All reads are served lock-free from an immutable epoch snapshot; ingest
// publishes a new snapshot per committed batch.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8042", "listen address")
	in := flag.String("in", "", "input .pg graph (mutually exclusive with -gen)")
	genN := flag.Int("gen", 0, "generate a synthetic Pd lifecycle graph with this many vertices")
	seed := flag.Int64("seed", 1, "generator seed (with -gen)")
	cacheCap := flag.Int("cache", 256, "segment result cache capacity (entries)")
	flag.Parse()

	p, err := openGraph(*in, *genN, *seed)
	if err != nil {
		log.Fatalf("provd: %v", err)
	}

	store := server.NewStore(p, *cacheCap)
	st := store.Stats()
	log.Printf("provd: serving %d vertices, %d edges on %s (epoch %d, cache capacity %d)",
		st.Vertices, st.Edges, *addr, st.Epoch, *cacheCap)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewServer(store),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("provd: %v", err)
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("provd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("provd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("provd: shutdown: %v", err)
		}
	}
}

// openGraph loads the input .pg file, or generates a Pd graph, or (with
// neither flag) starts empty for pure-ingest serving.
func openGraph(in string, genN int, seed int64) (*prov.Graph, error) {
	switch {
	case in != "" && genN > 0:
		return nil, fmt.Errorf("-in and -gen are mutually exclusive")
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		pg, err := graph.Load(f)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", in, err)
		}
		p := prov.Wrap(pg)
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("validate %s: %w", in, err)
		}
		return p, nil
	case genN > 0:
		return gen.Pd(gen.PdConfig{N: genN, Seed: seed}), nil
	default:
		return prov.New(), nil
	}
}
