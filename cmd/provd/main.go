// Command provd is the provenance query daemon: it hosts one or more named
// provenance stores (shards) — each a .pg graph, a generated synthetic
// lifecycle graph, or a pure-ingest empty graph — and serves the PgSeg /
// PgSum / Cypher operators plus lifecycle ingestion over an HTTP JSON API.
//
// Usage:
//
//	provd -in project.pg -addr :8042
//	provd -gen 10000 -seed 1 -addr :8042
//	provd -data /var/lib/provd -addr :8042
//	provd -data /var/lib/provd -stores audit,ml -addr :8042
//	provd -follow http://leader:8042 -addr :8043
//
// With -data the daemon is durable: every committed ingest batch is made
// durable in the store's write-ahead log (fsynced per -fsync; concurrent
// batches share one fsync via group commit unless -group-commit=false)
// before it is published, a background checkpointer persists each store's
// graph every -checkpoint-every batches, and a restart recovers every
// store's exact pre-crash epoch from its checkpoint + log tail. Each store
// owns the subdirectory -data/<name>/; every subdirectory holding state is
// recovered at boot even if not named in -stores. -in/-gen seed a fresh
// default store only; restarting over existing state refuses them.
//
// When several durable stores share -data under -fsync always, their group
// commits additionally share the fsync itself: a device-level coalescer
// batches every store's staged groups into one flush per sync window
// (syncfs(2) where available, parallel per-log fsyncs elsewhere), so a
// multi-store daemon pays one device barrier per window instead of one per
// store. -no-coalesce restores private per-store fsyncs.
//
// With -follow the daemon is a read-only replica: it mirrors the leader's
// store set (polling GET /stores), tails each store's wal stream
// (GET /stores/{name}/wal) and serves the full read API at its applied
// epoch. Writes answer 307 with the leader's address; reads presenting an
// X-Min-Epoch token (the epoch from an ingest response) wait for the
// applier to catch up or fail 412. POST /stores/{name}/promote seals a
// store's applier and opens its write path — the failover switch.
// -follow is incompatible with -data/-in/-gen: a follower's state is the
// leader's, not its own.
//
// Admission control: -qos-rate/-qos-burst/-qos-concurrency/-qos-queue set
// a default per-store admission policy (token-bucket rate limit, in-flight
// cap, and a bound on staged-but-uncommitted ingest batches). Requests over
// a limit are refused with 429 and a Retry-After hint instead of queuing,
// so a hot store cannot starve its neighbors. Limits are adjustable per
// store at runtime via the PUT /stores/{name} body.
//
// Endpoints (see internal/server; every store-scoped endpoint also exists
// unprefixed against the store named "default"):
//
//	POST /stores/{name}/segment    {"src":[0,1],"dst":[9000],"exclude_rels":["A","D"]}
//	POST /stores/{name}/summarize  {"segments":[{"src":[0],"dst":[50]},{"src":[1],"dst":[60]}]}
//	POST /stores/{name}/query      {"query":"match (e:E) where id(e) in [0, 1] return e"}
//	POST /stores/{name}/adjust     {"segment":{"src":[0],"dst":[9000]},"exclude_kinds":["U"]}
//	POST /stores/{name}/ingest     {"ops":[{"op":"run","agent":"alice","command":"train",
//	                                        "inputs":[3],"outputs":["model"]}]}
//	GET  /stores/{name}/stats
//	GET  /stores/{name}/metrics
//	GET  /stores/{name}/healthz
//	GET  /stores/{name}/export?format=prov-json|dot|pg
//	GET  /stores/{name}/wal?from=N replication stream (checkpoint + live log tail)
//	POST /stores/{name}/promote    seal a follower store's applier, open writes
//	PUT  /stores/{name}            create a store at runtime
//	GET  /stores                   list stores
//
// All reads are served lock-free from the routed store's immutable epoch
// snapshot; ingest publishes a new snapshot per committed batch. Stores are
// independent shards: ingest into one never blocks, fsyncs with, or
// invalidates caches of another.
//
// Observability: every response carries an X-Request-ID (the client's, if
// acceptable, else generated) that also appears in the structured request
// and commit logs (-log-level debug shows per-request/per-commit lines;
// -log-json switches the log stream to JSON). GET /metrics serves JSON by
// default and Prometheus text exposition with ?format=prometheus. Requests
// at or over -slow-ms land in a bounded ring dumped at GET /debug/slow with
// their request id, query shape and commit-stage breakdown. -debug-addr
// serves net/http/pprof on a separate listener (opt-in; keep it private).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prov"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8042", "listen address")
	in := flag.String("in", "", "input .pg graph seeding the default store (mutually exclusive with -gen)")
	genN := flag.Int("gen", 0, "generate a synthetic Pd lifecycle graph with this many vertices as the default store")
	seed := flag.Int64("seed", 1, "generator seed (with -gen)")
	cacheCap := flag.Int("cache", 256, "segment result cache capacity per store (entries)")
	stores := flag.String("stores", "", "comma-separated extra store names to open or create at boot (the \"default\" store always exists)")
	dataDir := flag.String("data", "", "root data directory for durable serving (per-store write-ahead log + checkpoints under <data>/<store>/); empty serves memory-only")
	follow := flag.String("follow", "", "run as a read-only follower replicating the provd leader at this base URL (e.g. http://leader:8042); incompatible with -data/-in/-gen")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always (every commit), interval (background flush), never (OS-paced)")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background flush period with -fsync interval")
	checkpointEvery := flag.Int("checkpoint-every", 256, "committed batches between checkpoints per store (bounds log growth and restart replay)")
	groupCommit := flag.Bool("group-commit", true, "amortize WAL fsyncs across concurrent ingest batches (one fsync per commit group instead of per batch)")
	noCoalesce := flag.Bool("no-coalesce", false, "disable the device-level fsync coalescer (each store's group commits fsync their own log even when many stores share the data directory)")
	qosRate := flag.Float64("qos-rate", 0, "per-store admission rate limit in requests/second (0 disables rate limiting; applies to every store, adjustable per store via PUT /stores/{name})")
	qosBurst := flag.Int("qos-burst", 0, "per-store admission burst on top of -qos-rate (0 derives the burst from the rate)")
	qosConcurrency := flag.Int("qos-concurrency", 0, "per-store cap on concurrently served requests (0 disables)")
	qosQueue := flag.Int("qos-queue", 0, "per-store commit-queue depth at which ingest is refused with 429 instead of blocking (0 disables; max 256)")
	logLevel := flag.String("log-level", "info", "structured log level: debug (per-request and per-commit lines), info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of key=value text")
	slowMillis := flag.Int64("slow-ms", 500, "slow-query threshold in milliseconds (requests at or over it enter GET /debug/slow; 0 captures everything, negative disables)")
	debugAddr := flag.String("debug-addr", "", "listen address for the net/http/pprof debug server (empty disables; bind it to a private interface)")
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logJSON)
	if err != nil {
		log.Fatalf("provd: %v", err)
	}

	qos := server.QoSConfig{
		RatePerSec:    *qosRate,
		Burst:         *qosBurst,
		MaxConcurrent: *qosConcurrency,
		MaxQueue:      *qosQueue,
	}
	var reg *server.Registry
	if *follow != "" {
		if *dataDir != "" || *in != "" || *genN > 0 {
			log.Fatalf("provd: -follow is incompatible with -data/-in/-gen (a follower mirrors the leader's state)")
		}
		reg, err = server.OpenFollower(server.FollowerOptions{
			LeaderURL: *follow,
			CacheCap:  *cacheCap,
			Logger:    logger,
		})
		if err != nil {
			log.Fatalf("provd: %v", err)
		}
		log.Printf("provd: following leader %s (%d stores discovered)", *follow, len(reg.Names()))
	} else {
		reg, err = openRegistry(*dataDir, *stores, *in, *genN, *seed, *cacheCap, *fsync, *fsyncInterval, *checkpointEvery, *groupCommit, *noCoalesce, qos, logger)
		if err != nil {
			log.Fatalf("provd: %v", err)
		}
	}
	defer reg.Close()

	st := reg.Default().Stats()
	log.Printf("provd: serving %d stores (default: %d vertices, %d edges, epoch %d) on %s (cache capacity %d/store)",
		len(reg.Names()), st.Vertices, st.Edges, st.Epoch, *addr, *cacheCap)

	srv := &http.Server{
		Addr: *addr,
		Handler: server.NewMultiServerWith(reg, server.Options{
			SlowThreshold: slowThreshold(*slowMillis),
			Logger:        logger,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		if err := startDebugServer(*debugAddr); err != nil {
			log.Fatalf("provd: %v", err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("provd: %v", err)
	}
	// The resolved address matters when -addr asked for port 0.
	log.Printf("provd: listening on %s", ln.Addr())

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			reg.Close()
			log.Fatalf("provd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("provd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			// Long-lived wal streams never drain on their own; sever them so
			// the process actually exits within the grace period.
			log.Printf("provd: shutdown: %v", err)
			_ = srv.Close()
		}
		// The deferred reg.Close seals every store's WAL and writes final
		// checkpoints once no more requests can commit.
	}
}

// buildLogger constructs the structured logger the request and commit logs
// write to (stderr, next to the startup log.Printf lines).
func buildLogger(level string, asJSON bool) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if asJSON {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
}

// slowThreshold maps the -slow-ms flag to the server option: 0 means
// "capture everything" (the smallest positive threshold), negative disables
// (the option's negative spelling).
func slowThreshold(ms int64) time.Duration {
	switch {
	case ms < 0:
		return -1
	case ms == 0:
		return time.Nanosecond
	default:
		return time.Duration(ms) * time.Millisecond
	}
}

// startDebugServer serves net/http/pprof on its own listener and mux —
// never on the API mux, so profiling endpoints are only reachable where the
// operator pointed -debug-addr.
func startDebugServer(addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("debug server: %w", err)
	}
	log.Printf("provd: pprof debug server on %s", ln.Addr())
	go func() {
		dbg := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		if err := dbg.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("provd: debug server: %v", err)
		}
	}()
	return nil
}

// openRegistry builds the memory-only or durable store registry per the
// flags.
func openRegistry(dataDir, stores, in string, genN int, seed int64, cacheCap int, fsync string, fsyncInterval time.Duration, checkpointEvery int, groupCommit, noCoalesce bool, qos server.QoSConfig, logger *slog.Logger) (*server.Registry, error) {
	var extra []string
	for _, name := range strings.Split(stores, ",") {
		if name = strings.TrimSpace(name); name != "" {
			extra = append(extra, name)
		}
	}
	opts := server.RegistryOptions{
		DataDir:         dataDir,
		CheckpointEvery: checkpointEvery,
		CacheCap:        cacheCap,
		NoGroupCommit:   !groupCommit,
		NoCoalesce:      noCoalesce,
		DefaultQoS:      qos,
		Logger:          logger,
	}
	if dataDir != "" {
		policy, err := wal.ParseSyncPolicy(fsync)
		if err != nil {
			return nil, err
		}
		opts.Fsync = policy
		opts.SyncInterval = fsyncInterval
		// -in/-gen describe a starting graph; recovered state IS the graph,
		// so combining them would silently discard one of the two. Make the
		// operator choose (a fresh directory, or dropping the seed flags).
		// The default store's state lives in <data>/default/, or directly in
		// <data>/ for pre-sharding directories.
		if in != "" || genN > 0 {
			for _, dir := range []string{dataDir, filepath.Join(dataDir, server.DefaultStore)} {
				has, err := wal.DirHasState(dir)
				if err != nil {
					return nil, err
				}
				if has {
					return nil, fmt.Errorf("-data %s already holds state; restart without -in/-gen (or point -data at a fresh directory)", dataDir)
				}
			}
		}
	}
	reg, rcvs, err := server.OpenRegistry(opts, extra, func() (*prov.Graph, error) { return openGraph(in, genN, seed) })
	if err != nil {
		return nil, err
	}
	for _, sr := range rcvs {
		switch {
		case dataDir == "":
			// memory-only: nothing recovered, nothing durable
		case sr.Rcv.Fresh:
			log.Printf("provd: store %q: initialized %s (fsync=%s, group commit %v, checkpoint every %d batches)",
				sr.Name, filepath.Join(dataDir, sr.Name), fsync, groupCommit, checkpointEvery)
		default:
			log.Printf("provd: store %q: recovered epoch %d (checkpoint %d + %d WAL records, torn tail: %v)",
				sr.Name, sr.Rcv.Epoch, sr.Rcv.CheckpointEpoch, sr.Rcv.Replayed, sr.Rcv.TornTail)
		}
	}
	return reg, nil
}

// openGraph loads the input .pg file, or generates a Pd graph, or (with
// neither flag) starts empty for pure-ingest serving.
func openGraph(in string, genN int, seed int64) (*prov.Graph, error) {
	switch {
	case in != "" && genN > 0:
		return nil, fmt.Errorf("-in and -gen are mutually exclusive")
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		pg, err := graph.Load(f)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", in, err)
		}
		p := prov.Wrap(pg)
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("validate %s: %w", in, err)
		}
		return p, nil
	case genN > 0:
		return gen.Pd(gen.PdConfig{N: genN, Seed: seed}), nil
	default:
		return prov.New(), nil
	}
}
