package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// Follower/failover end-to-end: two real provd binaries — a durable leader
// and a -follow replica — exercised the way an operator would run them:
// replicate live ingest across stores, read-your-writes against the
// replica, SIGKILL the leader, promote the replica, keep writing.

// noFollow surfaces 3xx instead of chasing them (the default client would
// transparently re-POST to the leader and hide the 307).
var noFollow = &http.Client{
	CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
}

// httpJSONHdr is httpJSON with request headers, response header capture,
// and no redirect-following.
func httpJSONHdr(t *testing.T, method, url string, hdr map[string]string, body, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := noFollow.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("bad response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// waitStoreEpoch polls a store's metrics until its epoch reaches want.
func waitStoreEpoch(t *testing.T, base, store string, want uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ep, _ := storeEpoch(t, base, store)
		if ep >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("store %s stuck at epoch %d short of %d", store, ep, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestProvdFollowerFailover(t *testing.T) {
	bin := buildProvd(t)
	leader := startProvd(t, bin, "-data", t.TempDir(), "-stores", "audit", "-checkpoint-every", "4")
	follower := startProvd(t, bin, "-follow", leader.base)

	// Live replication across both stores.
	ingestN(t, leader.base, "default", 12)
	ingestN(t, leader.base, "audit", 5)
	leadDef, leadDefVerts := storeEpoch(t, leader.base, "default")
	leadAud, _ := storeEpoch(t, leader.base, "audit")
	waitStoreEpoch(t, follower.base, "default", leadDef, 10*time.Second)
	waitStoreEpoch(t, follower.base, "audit", leadAud, 10*time.Second)
	if _, verts := storeEpoch(t, follower.base, "default"); verts != leadDefVerts {
		t.Fatalf("follower default store has %d vertices, leader %d", verts, leadDefVerts)
	}

	// Read-your-writes: the ingest epoch is a token any follower read can
	// present to wait for (or fail fast on).
	var ir server.IngestResponse
	if code := httpJSON(t, http.MethodPost, leader.base+"/ingest", server.IngestRequest{Ops: []server.IngestOp{
		{Op: "import", Agent: "op", Artifact: "rw-file", URL: "http://x"},
	}}, &ir); code != http.StatusOK || ir.Epoch == 0 {
		t.Fatalf("leader ingest: status %d epoch %d", code, ir.Epoch)
	}
	code, _ := httpJSONHdr(t, http.MethodGet, follower.base+"/stats",
		map[string]string{"X-Min-Epoch": strconv.FormatUint(ir.Epoch, 10)}, nil, nil)
	if code != http.StatusOK {
		t.Fatalf("follower read with token: status %d", code)
	}
	code, hdr := httpJSONHdr(t, http.MethodGet, follower.base+"/stats",
		map[string]string{"X-Min-Epoch": "100000", "X-Min-Epoch-Wait-Ms": "50"}, nil, nil)
	if code != http.StatusPreconditionFailed || hdr.Get("X-Repl-Leader") != leader.base {
		t.Fatalf("unreachable token: status %d leader header %q (want 412, %q)", code, hdr.Get("X-Repl-Leader"), leader.base)
	}

	// Writes bounce to the leader.
	code, hdr = httpJSONHdr(t, http.MethodPost, follower.base+"/ingest", nil, server.IngestRequest{Ops: []server.IngestOp{
		{Op: "agent", Agent: "x"},
	}}, nil)
	if code != http.StatusTemporaryRedirect || hdr.Get("Location") != leader.base+"/ingest" {
		t.Fatalf("follower write: status %d location %q", code, hdr.Get("Location"))
	}

	// The replica exports its lag panel.
	var m server.MetricsResponse
	if code := httpJSON(t, http.MethodGet, follower.base+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("follower metrics: status %d", code)
	}
	if m.Repl == nil || !m.Repl.Follower || m.Repl.LeaderURL != leader.base {
		t.Fatalf("follower repl panel: %+v", m.Repl)
	}

	// SIGKILL the leader: no goodbye, no final checkpoint. The replica's
	// applied prefix is now the surviving copy.
	folDef, _ := storeEpoch(t, follower.base, "default")
	if err := leader.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = leader.cmd.Process.Wait()

	// Promote both stores and verify the prefix carried over exactly.
	for _, store := range []string{"default", "audit"} {
		var pr server.PromoteResponse
		if code, _ := httpJSONHdr(t, http.MethodPost, follower.base+"/stores/"+store+"/promote", nil, nil, &pr); code != http.StatusOK {
			t.Fatalf("promote %s: status %d", store, code)
		}
		if code, _ := httpJSONHdr(t, http.MethodPost, follower.base+"/stores/"+store+"/promote", nil, nil, nil); code != http.StatusConflict {
			t.Fatalf("second promote %s: status %d, want 409", store, code)
		}
	}
	if ep, _ := storeEpoch(t, follower.base, "default"); ep != folDef {
		t.Fatalf("promotion moved the epoch: %d -> %d", folDef, ep)
	}

	// The promoted daemon takes writes and keeps counting epochs from the
	// replicated prefix.
	ingestN(t, follower.base, "default", 3)
	if ep, _ := storeEpoch(t, follower.base, "default"); ep != folDef+3 {
		t.Fatalf("post-failover epoch %d, want %d", ep, folDef+3)
	}
	if code := httpJSON(t, http.MethodGet, follower.base+"/metrics", nil, &m); code != http.StatusOK || m.Repl == nil || m.Repl.Follower {
		t.Fatalf("promoted store metrics: status %d repl %+v", code, m.Repl)
	}

	follower.stop(t)
}

// TestProvdFollowRefusesLocalState pins the flag contract: -follow with
// -data (or -in/-gen) must refuse to boot rather than serve two sources of
// truth.
func TestProvdFollowRefusesLocalState(t *testing.T) {
	bin := buildProvd(t)
	cmd := exec.Command(bin, "-follow", "http://127.0.0.1:1", "-data", t.TempDir())
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("provd booted with -follow and -data; output:\n%s", out)
	}
	if !strings.Contains(string(out), "incompatible") {
		t.Fatalf("unexpected refusal message:\n%s", out)
	}
}
