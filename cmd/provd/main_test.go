package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// End-to-end daemon test: build the real provd binary, boot it with -data,
// create two stores over HTTP, ingest into both, SIGTERM it, boot again
// over the same directory, and require both stores back at their exact
// pre-shutdown epochs with their data intact. This is the full
// flags → registry → directory tree → recovery path, as an operator runs it.

// buildProvd compiles the daemon once per test binary.
func buildProvd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "provd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// provdProc is one running daemon.
type provdProc struct {
	cmd  *exec.Cmd
	base string // http://host:port

	mu   sync.Mutex // guards logs: the scanner goroutine appends while failure paths read
	logs bytes.Buffer
}

func (p *provdProc) appendLog(line string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.logs.WriteString(line + "\n")
}

func (p *provdProc) logText() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.logs.String()
}

// startProvd boots the daemon on an OS-assigned port and waits until it
// serves /healthz. The resolved address is parsed from the startup log.
func startProvd(t *testing.T, bin string, args ...string) *provdProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &provdProc{cmd: cmd}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.appendLog(line)
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p.base = "http://" + addr
	case <-time.After(20 * time.Second):
		t.Fatalf("provd never reported its address; logs:\n%s", p.logText())
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("provd never became healthy; logs:\n%s", p.logText())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// stop SIGTERMs the daemon (the graceful path that seals WALs and writes
// final checkpoints) and waits for exit.
func (p *provdProc) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("provd exit: %v; logs:\n%s", err, p.logText())
		}
	case <-time.After(30 * time.Second):
		_ = p.cmd.Process.Kill()
		t.Fatalf("provd did not shut down; logs:\n%s", p.logText())
	}
}

// httpJSON issues one request and decodes the JSON reply.
func httpJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("bad response %q: %v", raw, err)
		}
	}
	return resp.StatusCode
}

func ingestN(t *testing.T, base, store string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		req := server.IngestRequest{Ops: []server.IngestOp{
			{Op: "import", Agent: "op-" + store, Artifact: fmt.Sprintf("%s-file-%d", store, i), URL: "http://x"},
		}}
		var resp server.IngestResponse
		if code := httpJSON(t, http.MethodPost, base+"/stores/"+store+"/ingest", req, &resp); code != http.StatusOK {
			t.Fatalf("ingest %s #%d: status %d", store, i, code)
		}
	}
}

func storeEpoch(t *testing.T, base, store string) (uint64, int) {
	t.Helper()
	var m server.MetricsResponse
	if code := httpJSON(t, http.MethodGet, base+"/stores/"+store+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics %s: status %d", store, code)
	}
	return m.Epoch, m.Vertices
}

func TestProvdRestartRecoversStores(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the real daemon; skipped in -short")
	}
	bin := buildProvd(t)
	dataDir := t.TempDir()

	p := startProvd(t, bin, "-data", dataDir, "-checkpoint-every", "3")
	var created server.StoreCreateResponse
	for _, name := range []string{"alpha", "beta"} {
		if code := httpJSON(t, http.MethodPut, p.base+"/stores/"+name, nil, &created); code != http.StatusCreated {
			t.Fatalf("create %s: status %d", name, code)
		}
	}
	ingestN(t, p.base, "alpha", 2)
	ingestN(t, p.base, "beta", 5)
	ingestN(t, p.base, server.DefaultStore, 1)
	wantAlphaE, wantAlphaV := storeEpoch(t, p.base, "alpha")
	wantBetaE, wantBetaV := storeEpoch(t, p.base, "beta")
	if wantAlphaE != 2 || wantBetaE != 5 {
		t.Fatalf("pre-shutdown epochs: alpha %d, beta %d", wantAlphaE, wantBetaE)
	}
	p.stop(t)

	// Second boot: no -stores flag — the directory scan must find both.
	p2 := startProvd(t, bin, "-data", dataDir, "-checkpoint-every", "3")
	var list server.StoreListResponse
	if code := httpJSON(t, http.MethodGet, p2.base+"/stores", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	names := make([]string, 0, len(list.Stores))
	for _, s := range list.Stores {
		names = append(names, s.Name)
	}
	if strings.Join(names, ",") != "default,alpha,beta" {
		t.Fatalf("recovered stores %v, want [default alpha beta]", names)
	}
	if e, v := storeEpoch(t, p2.base, "alpha"); e != wantAlphaE || v != wantAlphaV {
		t.Errorf("alpha recovered to epoch %d (%d vertices), want %d (%d)", e, v, wantAlphaE, wantAlphaV)
	}
	if e, v := storeEpoch(t, p2.base, "beta"); e != wantBetaE || v != wantBetaV {
		t.Errorf("beta recovered to epoch %d (%d vertices), want %d (%d)", e, v, wantBetaE, wantBetaV)
	}
	if e, _ := storeEpoch(t, p2.base, server.DefaultStore); e != 1 {
		t.Errorf("default recovered to epoch %d, want 1", e)
	}
	// The recovered stores still serve queries and accept writes.
	var qr server.QueryResponse
	if code := httpJSON(t, http.MethodPost, p2.base+"/stores/beta/query",
		server.QueryRequest{Query: "match (e:E) return e"}, &qr); code != http.StatusOK {
		t.Fatalf("query on recovered store: status %d", code)
	}
	// beta holds 5 imports: 5 entities plus the one importing agent vertex.
	if len(qr.Rows) != 5 {
		t.Errorf("beta query returned %d entities, want 5 (vertices %d)", len(qr.Rows), wantBetaV)
	}
	ingestN(t, p2.base, "alpha", 1)
	if e, _ := storeEpoch(t, p2.base, "alpha"); e != wantAlphaE+1 {
		t.Errorf("alpha post-restart ingest landed at epoch %d, want %d", e, wantAlphaE+1)
	}
	p2.stop(t)
}

// TestProvdRefusesSeedOverState re-checks the -in/-gen guard against the
// sharded layout: a restart over existing default-store state must refuse
// the seed flags.
func TestProvdRefusesSeedOverState(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the real daemon; skipped in -short")
	}
	bin := buildProvd(t)
	dataDir := t.TempDir()
	p := startProvd(t, bin, "-data", dataDir)
	ingestN(t, p.base, server.DefaultStore, 1)
	p.stop(t)

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", dataDir, "-gen", "100")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("provd accepted -gen over existing state:\n%s", out)
	}
	if !strings.Contains(string(out), "already holds state") {
		t.Fatalf("unexpected failure mode: %v\n%s", err, out)
	}
}

// TestProvdObservability boots the daemon with the observability surfaces
// wide open (-slow-ms 0 captures everything, -log-level debug, -log-json)
// and drives the full acceptance path: X-Request-ID echo, the id appearing
// in the structured logs, the slow-query ring, and a /metrics scrape in
// Prometheus text format validated line by line. CI runs this test as its
// scrape check.
func TestProvdObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the real daemon; skipped in -short")
	}
	bin := buildProvd(t)
	p := startProvd(t, bin,
		"-data", t.TempDir(),
		"-slow-ms", "0",
		"-log-level", "debug",
		"-log-json",
	)

	// Ingest with a client-supplied request id; the response must echo it.
	const reqID = "e2e-observability-1"
	body, _ := json.Marshal(server.IngestRequest{Ops: []server.IngestOp{
		{Op: "import", Agent: "op", Artifact: "file-0", URL: "http://x"},
	}})
	req, err := http.NewRequest(http.MethodPost, p.base+"/ingest", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Fatalf("request id echoed as %q, want %q", got, reqID)
	}

	// The id must surface in the structured request and commit logs.
	logDeadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(p.logText(), reqID) {
		if time.Now().After(logDeadline) {
			t.Fatalf("request id %q never appeared in logs:\n%s", reqID, p.logText())
		}
		time.Sleep(50 * time.Millisecond)
	}
	logged := p.logText()
	if !strings.Contains(logged, `"msg":"request"`) {
		t.Errorf("no JSON request log line:\n%s", logged)
	}
	if !strings.Contains(logged, `"msg":"commit published"`) {
		t.Errorf("no JSON commit log line:\n%s", logged)
	}

	// -slow-ms 0: the ingest must be in the slow ring, with its id and the
	// commit-stage breakdown.
	var slow server.SlowResponse
	slowDeadline := time.Now().Add(5 * time.Second)
	for {
		if code := httpJSON(t, http.MethodGet, p.base+"/debug/slow", nil, &slow); code != http.StatusOK {
			t.Fatalf("/debug/slow status %d", code)
		}
		found := false
		for _, e := range slow.Entries {
			if e.RequestID == reqID {
				found = true
				if e.Endpoint != "ingest" || e.Stages == nil || e.Stages.PublishNanos <= 0 {
					t.Fatalf("slow entry incomplete: %+v", e)
				}
			}
		}
		if found {
			break
		}
		if time.Now().After(slowDeadline) {
			t.Fatalf("ingest never reached /debug/slow: %+v", slow)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The Prometheus scrape must be valid text exposition carrying the
	// request and commit-stage series.
	scrape, err := http.Get(p.base + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(scrape.Body)
	scrape.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if scrape.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", scrape.StatusCode)
	}
	if ct := scrape.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("scrape Content-Type %q", ct)
	}
	samples, err := obs.ParseExposition(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("scrape is not valid exposition: %v", err)
	}
	for _, want := range []string{
		"provd_epoch",
		"provd_requests_total",
		"provd_request_latency_seconds_bucket",
		"provd_request_latency_quantile_seconds",
		"provd_commit_stage_latency_seconds_bucket",
		"provd_group_commit_queue_wait_seconds_total",
		"provd_slow_queries_total",
	} {
		if samples[want] == 0 {
			t.Errorf("scrape missing %s", want)
		}
	}
	p.stop(t)
}

// TestProvdDebugAddr boots with -debug-addr and requires the pprof index on
// the debug listener while the API listener stays pprof-free.
func TestProvdDebugAddr(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the real daemon; skipped in -short")
	}
	bin := buildProvd(t)
	p := startProvd(t, bin, "-debug-addr", "127.0.0.1:0")

	// The debug listener's resolved address is in the startup log.
	var dbgAddr string
	deadline := time.Now().Add(5 * time.Second)
	for dbgAddr == "" {
		for _, line := range strings.Split(p.logText(), "\n") {
			if i := strings.Index(line, "pprof debug server on "); i >= 0 {
				dbgAddr = strings.TrimSpace(line[i+len("pprof debug server on "):])
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("debug server never announced; logs:\n%s", p.logText())
		}
	}
	resp, err := http.Get("http://" + dbgAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	// The API mux must not expose pprof.
	apiResp, err := http.Get(p.base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, apiResp.Body)
	apiResp.Body.Close()
	if apiResp.StatusCode == http.StatusOK {
		t.Fatal("API listener serves pprof; it must only live on -debug-addr")
	}
	p.stop(t)
}
