// Command probe prints quick solver timings (development aid).
package main

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	sizes := []int{500, 1000, 2000, 5000}
	if len(os.Args) > 1 {
		sizes = nil
		for _, a := range os.Args[1:] {
			n, _ := strconv.Atoi(a)
			sizes = append(sizes, n)
		}
	}
	for _, n := range sizes {
		p := gen.Pd(gen.PdConfig{N: n, Seed: 1})
		src, dst := gen.DefaultQuery(p)
		kinds := []core.SolverKind{core.SolverTst, core.SolverAlg}
		if os.Getenv("PROBE_TST_ONLY") != "" {
			kinds = kinds[:1]
		}
		if os.Getenv("PROBE_CFLRB") != "" {
			kinds = append(kinds, core.SolverCflrB)
		}
		for _, kind := range kinds {
			eng := core.NewEngine(p, core.Options{Solver: kind})
			start := time.Now()
			set, err := eng.SimilarPaths(core.Query{Src: src, Dst: dst})
			if err != nil {
				panic(err)
			}
			fmt.Printf("n=%d %-12v %12v  |VC2|=%d\n", n, kind, time.Since(start).Round(time.Microsecond), set.Cardinality())
		}
	}
}
