// Command provbench regenerates the paper's experimental evaluation
// (Fig. 5 panels a-h) and prints each panel as a text table.
//
// Usage:
//
//	provbench [-figure 5a|5b|...|all] [-scale small|medium|paper]
//
// Scales: "small" finishes in seconds, "medium" in minutes, "paper"
// approaches the paper's graph sizes (needs ~16 GB like the paper's
// machine). Absolute times differ from the paper's hardware; the series
// shapes are the reproduction target (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	figure := flag.String("figure", "all", "panel to run: 5a..5h, csr, vec, seg, srv, shard, qos, repl or all")
	scale := flag.String("scale", "small", "experiment scale: small, medium, paper")
	record := flag.String("record", "", "append the serving-layer panels (srv, csr, vec, seg, shard, qos, repl) to this JSON history file (e.g. BENCH_provd.json)")
	flag.Parse()

	sc := bench.Scale(*scale)
	switch sc {
	case bench.ScaleSmall, bench.ScaleMedium, bench.ScalePaper:
	default:
		fmt.Fprintf(os.Stderr, "provbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	ids := bench.IDs()
	if *figure != "all" {
		ids = strings.Split(*figure, ",")
	}
	start := time.Now()
	for _, id := range ids {
		fig, ok := bench.ByID(strings.TrimSpace(id), sc)
		if !ok {
			fmt.Fprintf(os.Stderr, "provbench: unknown figure %q (have %v)\n", id, bench.IDs())
			os.Exit(2)
		}
		fig.Render(os.Stdout)
		if *record != "" && (fig.ID == "srv" || fig.ID == "csr" || fig.ID == "vec" || fig.ID == "seg" || fig.ID == "shard" || fig.ID == "qos" || fig.ID == "repl") {
			if err := bench.RecordFigure(*record, fig, sc); err != nil {
				fmt.Fprintf(os.Stderr, "provbench: record: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("recorded %q into %s\n", fig.ID, *record)
		}
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))
}
