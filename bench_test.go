package provdb_test

// Benchmarks regenerating the paper's evaluation (Fig. 5, panels a-h), one
// benchmark family per panel, plus micro-benchmarks for the substrates.
// `go test -bench=. -benchmem` runs representative points; the full sweeps
// (all x-axis values, paper-scale graphs) live in cmd/provbench.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	provdb "repro"
)

var pdBenchCache = map[string]*provdb.Graph{}

func benchPd(b *testing.B, cfg provdb.PdConfig) *provdb.Graph {
	b.Helper()
	key := fmt.Sprintf("%+v", cfg)
	if g, ok := pdBenchCache[key]; ok {
		return g
	}
	g := provdb.GeneratePd(cfg)
	pdBenchCache[key] = g
	return g
}

func benchVC2(b *testing.B, g *provdb.Graph, src, dst []provdb.VertexID, opts provdb.SegmentOptions) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seg, err := g.SegmentWith(provdb.Query{Src: src, Dst: dst}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if seg.NumVertices() == 0 {
			b.Fatal("empty segment")
		}
	}
}

// --- Fig 5a: runtime vs graph size, per solver ---

func BenchmarkFig5a(b *testing.B) {
	solvers := []struct {
		name string
		opts provdb.SegmentOptions
	}{
		{"SimProvTst", provdb.SegmentOptions{Solver: provdb.SolverTst}},
		{"SimProvAlg", provdb.SegmentOptions{Solver: provdb.SolverAlg}},
		{"SimProvTstCbm", provdb.SegmentOptions{Solver: provdb.SolverTst, Sets: provdb.RoaringSets}},
		{"SimProvAlgCbm", provdb.SegmentOptions{Solver: provdb.SolverAlg, Sets: provdb.RoaringSets}},
		{"CflrB", provdb.SegmentOptions{Solver: provdb.SolverCflrB}},
	}
	for _, n := range []int{1000, 10000} {
		g := benchPd(b, provdb.PdConfig{N: n, Seed: 1})
		src, dst := provdb.DefaultPdQuery(g)
		for _, s := range solvers {
			// The pair-materializing algorithms allocate gigabytes beyond
			// Pd1k; only SimProvTst keeps the large point (Fig. 5a's full
			// sweep lives in cmd/provbench).
			if n > 1000 && !strings.HasPrefix(s.name, "SimProvTst") {
				continue
			}
			b.Run(fmt.Sprintf("%s/Pd%d", s.name, n), func(b *testing.B) {
				benchVC2(b, g, src, dst, s.opts)
			})
		}
	}
}

func BenchmarkFig5aCypher(b *testing.B) {
	// Sparse toy graph: the baseline's cost is exponential in the
	// ancestry-cone density (that is Fig. 5a's point).
	g := benchPd(b, provdb.PdConfig{N: 40, LambdaIn: 1, Seed: 1})
	ents := g.Prov().Entities()
	src := []provdb.VertexID{ents[0], ents[1]}
	dst := []provdb.VertexID{ents[len(ents)-1]}
	q := fmt.Sprintf(`match p1=(bb:E)<-[:U|G*]-(e1:E)
where id(bb) in [%d, %d] and id(e1) in [%d]
with p1
match p2=(c:E)<-[:U|G*]-(e2:E)
where id(e2) in [%d] and
  extract(x in nodes(p1) | labels(x)[0]) = extract(x in nodes(p2) | labels(x)[0]) and
  extract(x in relationships(p1) | type(x)) = extract(x in relationships(p2) | type(x))
return p2`, src[0], src[1], dst[0], dst[0])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Cypher(q, provdb.CypherOptions{Timeout: time.Minute}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 5b: selection skew ---

func BenchmarkFig5b(b *testing.B) {
	for _, se := range []float64{1.1, 1.5, 2.1} {
		g := benchPd(b, provdb.PdConfig{N: 2000, SelectSkew: se, Seed: 1})
		src, dst := provdb.DefaultPdQuery(g)
		b.Run(fmt.Sprintf("se%.1f/SimProvTst", se), func(b *testing.B) {
			benchVC2(b, g, src, dst, provdb.SegmentOptions{Solver: provdb.SolverTst})
		})
		b.Run(fmt.Sprintf("se%.1f/SimProvAlg", se), func(b *testing.B) {
			benchVC2(b, g, src, dst, provdb.SegmentOptions{Solver: provdb.SolverAlg})
		})
	}
}

// --- Fig 5c: activity input mean ---

func BenchmarkFig5c(b *testing.B) {
	for _, li := range []float64{1, 3, 5} {
		g := benchPd(b, provdb.PdConfig{N: 2000, LambdaIn: li, Seed: 1})
		src, dst := provdb.DefaultPdQuery(g)
		b.Run(fmt.Sprintf("li%.0f/SimProvTst", li), func(b *testing.B) {
			benchVC2(b, g, src, dst, provdb.SegmentOptions{Solver: provdb.SolverTst})
		})
		b.Run(fmt.Sprintf("li%.0f/SimProvAlg", li), func(b *testing.B) {
			benchVC2(b, g, src, dst, provdb.SegmentOptions{Solver: provdb.SolverAlg})
		})
	}
}

// --- Fig 5d: early stopping vs source rank ---

func BenchmarkFig5d(b *testing.B) {
	g := benchPd(b, provdb.PdConfig{N: 5000, Seed: 1})
	for _, pct := range []int{0, 40, 80} {
		src, dst := provdb.PdQueryAtRank(g, pct)
		b.Run(fmt.Sprintf("rank%d/EarlyStop", pct), func(b *testing.B) {
			benchVC2(b, g, src, dst, provdb.SegmentOptions{Solver: provdb.SolverAlg})
		})
		b.Run(fmt.Sprintf("rank%d/NoEarlyStop", pct), func(b *testing.B) {
			benchVC2(b, g, src, dst, provdb.SegmentOptions{Solver: provdb.SolverAlg, NoEarlyStop: true})
		})
	}
}

// --- Fig 5e-5h: compaction ratio (reported as a metric) ---

func benchCR(b *testing.B, cfg provdb.SdConfig) {
	b.Helper()
	cfg.Seed = 1
	_, segs := provdb.GenerateSd(cfg)
	b.ReportAllocs()
	var cr, pcr float64
	for i := 0; i < b.N; i++ {
		psg, err := provdb.Summarize(segs, provdb.SdSumOptions())
		if err != nil {
			b.Fatal(err)
		}
		cr = psg.CompactionRatio()
		pcr = provdb.PSumBaseline(segs, provdb.SdSumOptions().K)
	}
	b.ReportMetric(cr, "cr")
	b.ReportMetric(pcr, "psum-cr")
}

func BenchmarkFig5e(b *testing.B) {
	for _, alpha := range []float64{0.025, 0.1, 1} {
		b.Run(fmt.Sprintf("alpha%g", alpha), func(b *testing.B) {
			benchCR(b, provdb.SdConfig{Alpha: alpha})
		})
	}
}

func BenchmarkFig5f(b *testing.B) {
	for _, k := range []int{3, 10, 25} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			benchCR(b, provdb.SdConfig{States: k})
		})
	}
}

func BenchmarkFig5g(b *testing.B) {
	for _, n := range []int{5, 20, 50} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			benchCR(b, provdb.SdConfig{Activities: n})
		})
	}
}

func BenchmarkFig5h(b *testing.B) {
	for _, s := range []int{5, 20, 40} {
		b.Run(fmt.Sprintf("S%d", s), func(b *testing.B) {
			benchCR(b, provdb.SdConfig{Alpha: 0.25, Segments: s})
		})
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkPdGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := provdb.GeneratePd(provdb.PdConfig{N: 10000, Seed: int64(i + 1)})
		if g.NumVertices() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkSaveLoad(b *testing.B) {
	g := benchPd(b, provdb.PdConfig{N: 10000, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := g.Save(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf))
	}
}

type writeCounter int

func (w *writeCounter) Write(p []byte) (int, error) { *w += writeCounter(len(p)); return len(p), nil }

func BenchmarkSegmentFullPipeline(b *testing.B) {
	g := benchPd(b, provdb.PdConfig{N: 10000, Seed: 1})
	src, dst := provdb.DefaultPdQuery(g)
	q := provdb.Query{
		Src: src, Dst: dst,
		Boundary: provdb.Boundary{
			ExcludeRels: []provdb.Rel{provdb.RelAttr},
			Expansions:  []provdb.Expansion{{Within: dst, K: 2}},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Segment(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummarizeFig2(b *testing.B) {
	g, names := provdb.Fig2Lifecycle()
	s1, err := g.Segment(provdb.Fig2Q1(names))
	if err != nil {
		b.Fatal(err)
	}
	s2, err := g.Segment(provdb.Fig2Q2(names))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := provdb.Summarize([]*provdb.Segment{s1, s2}, provdb.Fig2Q3Options()); err != nil {
			b.Fatal(err)
		}
	}
}
